// Package journal is a crash-safe, segment-rotated write-ahead journal:
// the durable substrate under campaign checkpoints and the engine's
// opt-in durable event/incident sinks. Its contract is the recovery
// invariant the kill-anywhere tests enforce — kill the writing process
// at ANY instant (between or inside individual writes, fsyncs, and
// renames) and reopening the directory recovers a clean prefix of the
// appended records: every record whose Append was acknowledged durable
// survives, no torn or checksum-invalid record is ever surfaced, and
// the torn tail left by the crash is silently truncated.
//
// Layout: a journal is a directory of append-only segment files
// (seg-00000001.wal, seg-00000002.wal, ...) plus a MANIFEST sealing the
// rotated ones. Records are CRC-32C-framed and length-prefixed
// (segment.go); rotation and manifest replacement use atomic renames
// with directory fsyncs (manifest.go). Durability is configurable per
// journal: fsync every record, group-commit on an interval, or leave
// flushing to the OS (SyncPolicy).
package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncEachRecord fsyncs inside every Append: an acknowledged record
	// is durable. The safest and slowest policy, right for low-rate
	// journals whose records are expensive to lose (campaign
	// checkpoints journal one record per multi-second trial).
	SyncEachRecord SyncPolicy = iota
	// SyncInterval group-commits: appends return after the buffered
	// write and a background flusher fsyncs every Interval. A crash
	// loses at most the records of the last uncommitted group. Right
	// for high-rate streams (engine event sinks).
	SyncInterval
	// SyncNone never fsyncs explicitly (the OS flushes when it
	// pleases). Recovery still yields a clean prefix — just a shorter
	// one.
	SyncNone
)

// String returns the policy's flag-friendly name.
func (p SyncPolicy) String() string {
	switch p {
	case SyncEachRecord:
		return "record"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy inverts SyncPolicy.String.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "record":
		return SyncEachRecord, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("journal: unknown sync policy %q (want record, interval, or none)", s)
	}
}

// Options parameterizes Open. Zero fields take the defaults noted.
type Options struct {
	// Dir is the journal directory (required; created if absent).
	Dir string
	// Sync is the fsync policy (default SyncEachRecord).
	Sync SyncPolicy
	// Interval is the group-commit period for SyncInterval (default
	// 25ms).
	Interval time.Duration
	// SegmentBytes rotates the active segment once it reaches this size
	// (default 4 MiB; every segment holds at least one record
	// regardless).
	SegmentBytes int64
	// FS overrides the filesystem, which is how the crash harness
	// injects process death into individual writes/fsyncs/renames (nil
	// = the real filesystem).
	FS FS
}

// RecoveryInfo describes what Open (or Replay) found.
type RecoveryInfo struct {
	// Records is how many valid records the journal held.
	Records uint64
	// Segments is how many segment files were read.
	Segments int
	// TruncatedBytes is the size of the torn tail dropped from the last
	// segment (0 when the journal was clean).
	TruncatedBytes int64
	// TornSegment names the segment file that was truncated, if any.
	TornSegment string
	// TornReason says why the tail was invalid ("torn record payload",
	// "bad checksum", ...).
	TornReason string
}

// Journal is an open write-ahead journal. Safe for concurrent use by
// multiple appenders; a single Journal owns its directory (the package
// does not arbitrate between processes).
type Journal struct {
	opts Options
	fs   FS

	mu            sync.Mutex
	active        File
	activeSeq     uint64
	activeBytes   int64
	activeRecords uint64
	sealed        []sealedSegment
	lsn           uint64
	dirty         bool
	err           error // sticky: first FS failure kills the journal
	closed        bool
	rec           RecoveryInfo

	flushStop chan struct{}
	flushDone chan struct{}
}

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

// Open opens (creating or recovering) the journal in opts.Dir. Recovery
// replays the manifest and segments, verifies every sealed record's
// checksum, truncates the torn tail a crash may have left on the active
// segment, and positions the journal to append after the last valid
// record. Damage anywhere except the unsealed tail fails with an
// ErrCorrupt-wrapped error instead of surfacing bad records.
func Open(opts Options) (*Journal, error) {
	if opts.Dir == "" {
		return nil, errors.New("journal: Options.Dir is required")
	}
	if opts.FS == nil {
		opts.FS = OSFS()
	}
	if opts.Interval <= 0 {
		opts.Interval = 25 * time.Millisecond
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create dir: %w", err)
	}
	// A crash during a manifest replacement can leave the temp file;
	// it carries no durable state.
	os.Remove(filepath.Join(opts.Dir, manifestTmp))

	j := &Journal{opts: opts, fs: opts.FS}
	st, err := recoverDir(opts.Dir, true)
	if err != nil {
		return nil, err
	}
	j.sealed = st.sealed
	j.lsn = st.records
	j.rec = st.info

	if st.tailSeq != 0 {
		// Continue appending to the unsealed tail segment.
		f, err := j.fs.OpenAppend(segPath(opts.Dir, st.tailSeq))
		if err != nil {
			return nil, fmt.Errorf("journal: reopen tail segment: %w", err)
		}
		j.active = f
		j.activeSeq = st.tailSeq
		j.activeBytes = st.tailBytes
		j.activeRecords = st.tailRecords
	} else {
		// Fresh directory, or every segment is sealed: start the next one.
		if err := j.createSegment(st.nextSeq); err != nil {
			return nil, err
		}
	}
	if opts.Sync == SyncInterval {
		j.flushStop = make(chan struct{})
		j.flushDone = make(chan struct{})
		go j.flushLoop()
	}
	return j, nil
}

// Recovery reports what Open found on disk.
func (j *Journal) Recovery() RecoveryInfo { return j.rec }

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.opts.Dir }

// Len returns the number of records in the journal (recovered plus
// appended).
func (j *Journal) Len() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lsn
}

// Err returns the journal's sticky error: the first filesystem failure
// that killed it, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Append journals one record and returns its LSN (1-based position).
// Durability on return follows the SyncPolicy. Any filesystem failure
// is fatal to the journal: the error sticks, and every later operation
// returns it — exactly the "stop at the instant of death" semantics the
// crash harness relies on.
func (j *Journal) Append(payload []byte) (uint64, error) {
	if len(payload) == 0 {
		return 0, errors.New("journal: empty record")
	}
	if len(payload) > maxRecord {
		return 0, fmt.Errorf("journal: record of %d bytes exceeds the %d-byte bound", len(payload), maxRecord)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, ErrClosed
	}
	if j.err != nil {
		return 0, j.err
	}
	frame := appendFrame(nil, payload)
	if j.activeRecords > 0 && j.activeBytes+int64(len(frame)) > j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			j.err = err
			return 0, err
		}
	}
	n, err := j.active.Write(frame)
	if err != nil {
		j.err = fmt.Errorf("journal: append: %w", err)
		return 0, j.err
	}
	if n < len(frame) {
		j.err = fmt.Errorf("journal: short append (%d of %d bytes)", n, len(frame))
		return 0, j.err
	}
	if j.opts.Sync == SyncEachRecord {
		if err := j.active.Sync(); err != nil {
			j.err = fmt.Errorf("journal: sync: %w", err)
			return 0, j.err
		}
	} else {
		j.dirty = true
	}
	j.activeBytes += int64(len(frame))
	j.activeRecords++
	j.lsn++
	return j.lsn, nil
}

// Sync forces everything appended so far to disk, regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.closed {
		return ErrClosed
	}
	if j.err != nil {
		return j.err
	}
	if err := j.active.Sync(); err != nil {
		j.err = fmt.Errorf("journal: sync: %w", err)
		return j.err
	}
	j.dirty = false
	return nil
}

// Close flushes and closes the journal. The active segment stays
// unsealed: the next Open continues appending to it, so open/close
// cycles do not proliferate segments.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	if j.flushStop != nil {
		close(j.flushStop)
	}
	j.mu.Unlock()
	if j.flushDone != nil {
		<-j.flushDone
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.closed = true
	var err error
	if j.err == nil {
		if serr := j.active.Sync(); serr != nil {
			err = fmt.Errorf("journal: sync on close: %w", serr)
		}
	}
	if cerr := j.active.Close(); cerr != nil && err == nil && j.err == nil {
		err = fmt.Errorf("journal: close: %w", cerr)
	}
	return err
}

// rotateLocked seals the active segment and starts the next one:
// sync + close the active file, seal it in the manifest (atomic
// rename), then create the successor — in that order, so "a segment
// with a successor is sealed" holds at every crash point.
func (j *Journal) rotateLocked() error {
	if err := j.active.Sync(); err != nil {
		return fmt.Errorf("journal: rotate sync: %w", err)
	}
	if err := j.active.Close(); err != nil {
		return fmt.Errorf("journal: rotate close: %w", err)
	}
	j.sealed = append(j.sealed, sealedSegment{
		Seq: j.activeSeq, Records: j.activeRecords, Bytes: j.activeBytes})
	if err := writeManifest(j.fs, j.opts.Dir, manifest{Sealed: j.sealed}); err != nil {
		return err
	}
	return j.createSegment(j.activeSeq + 1)
}

// createSegment creates the (empty) segment seq and makes it active.
func (j *Journal) createSegment(seq uint64) error {
	f, err := j.fs.Create(segPath(j.opts.Dir, seq))
	if err != nil {
		return fmt.Errorf("journal: create segment: %w", err)
	}
	if err := j.fs.SyncDir(j.opts.Dir); err != nil {
		f.Close()
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	j.active = f
	j.activeSeq = seq
	j.activeBytes = 0
	j.activeRecords = 0
	return nil
}

// flushLoop is the SyncInterval group-commit flusher.
func (j *Journal) flushLoop() {
	defer close(j.flushDone)
	t := time.NewTicker(j.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-j.flushStop:
			return
		case <-t.C:
			j.mu.Lock()
			if !j.closed && j.err == nil && j.dirty {
				if err := j.active.Sync(); err != nil {
					j.err = fmt.Errorf("journal: group commit: %w", err)
				} else {
					j.dirty = false
				}
			}
			j.mu.Unlock()
		}
	}
}

// dirState is the outcome of scanning a journal directory.
type dirState struct {
	sealed  []sealedSegment
	records uint64
	// tailSeq is the unsealed tail segment (0 = none: fresh dir or all
	// sealed); tailBytes/tailRecords are its valid extent.
	tailSeq     uint64
	tailBytes   int64
	tailRecords uint64
	// nextSeq is the sequence to create when there is no tail.
	nextSeq uint64
	info    RecoveryInfo
	// payloads is filled by Replay (repair=false) only.
	payloads [][]byte
}

// recoverDir scans and validates dir. With repair=true the torn tail is
// truncated on disk (Open); with repair=false payloads are collected
// and the tail merely ignored (Replay).
func recoverDir(dir string, repair bool) (dirState, error) {
	st := dirState{nextSeq: 1}
	m, err := readManifest(dir)
	if err != nil {
		return st, err
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return st, fmt.Errorf("journal: list segments: %w", err)
	}
	sealedBySeq := make(map[uint64]sealedSegment, len(m.Sealed))
	for _, s := range m.Sealed {
		sealedBySeq[s.Seq] = s
	}
	present := make(map[uint64]bool, len(seqs))
	for _, seq := range seqs {
		present[seq] = true
	}
	for _, s := range m.Sealed {
		if !present[s.Seq] {
			return st, fmt.Errorf("%w: sealed segment %s is missing", ErrCorrupt, segName(s.Seq))
		}
	}
	st.info.Segments = len(seqs)
	for i, seq := range seqs {
		last := i == len(seqs)-1
		path := segPath(dir, seq)
		scan, err := scanSegment(path)
		if err != nil {
			return st, fmt.Errorf("journal: read %s: %w", segName(seq), err)
		}
		sealed, isSealed := sealedBySeq[seq]
		switch {
		case isSealed:
			// Sealed segments are immutable and fully fsynced: any
			// mismatch with the manifest is corruption, not a crash.
			if !scan.clean() || scan.size != sealed.Bytes || uint64(len(scan.payloads)) != sealed.Records {
				reason := scan.badReason
				if reason == "" {
					reason = fmt.Sprintf("has %d records in %d bytes, manifest sealed %d in %d",
						len(scan.payloads), scan.size, sealed.Records, sealed.Bytes)
				}
				return st, fmt.Errorf("%w: sealed segment %s: %s", ErrCorrupt, segName(seq), reason)
			}
			st.sealed = append(st.sealed, sealed)
		case !last:
			// An unsealed segment with a successor cannot survive a
			// crash under the rotation protocol (seal-then-create) —
			// but a read-only Replay racing a LIVE writer can observe
			// it: the manifest was read before the writer sealed this
			// segment, the listing after it created the successor. The
			// successor's existence proves the segment was completely
			// written and fsynced first, so when the scan agrees
			// (clean to EOF) Replay accepts it as sealed-by-race.
			// Open (repair=true) keeps the strict check: it owns the
			// directory, so nobody may be writing, and tampering must
			// not be repaired over.
			if repair || !scan.clean() {
				return st, fmt.Errorf("%w: unsealed segment %s is followed by %s", ErrCorrupt, segName(seq), segName(seqs[i+1]))
			}
		default:
			// The unsealed tail: valid prefix survives, damage past it
			// is the crash's torn tail.
			if !scan.clean() {
				st.info.TruncatedBytes = scan.size - scan.good
				st.info.TornSegment = segName(seq)
				st.info.TornReason = scan.badReason
				if repair {
					if err := os.Truncate(path, scan.good); err != nil {
						return st, fmt.Errorf("journal: truncate torn tail of %s: %w", segName(seq), err)
					}
				}
			}
			st.tailSeq = seq
			st.tailBytes = scan.good
			st.tailRecords = uint64(len(scan.payloads))
		}
		st.records += uint64(len(scan.payloads))
		if !repair {
			st.payloads = append(st.payloads, scan.payloads...)
		}
		if seq >= st.nextSeq {
			st.nextSeq = seq + 1
		}
	}
	st.info.Records = st.records
	return st, nil
}

// Replay reads the journal in dir without opening it for writing: each
// valid record is passed to fn with its LSN, in order. The torn tail,
// if any, is skipped (and reported in the RecoveryInfo) but NOT
// truncated — Replay never modifies the directory, so it is safe on the
// journal of a crashed process that is being examined post-mortem.
func Replay(dir string, fn func(lsn uint64, payload []byte) error) (RecoveryInfo, error) {
	st, err := recoverDir(dir, false)
	if err != nil {
		return st.info, err
	}
	for i, p := range st.payloads {
		if err := fn(uint64(i+1), p); err != nil {
			return st.info, err
		}
	}
	return st.info, nil
}
