package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// buildReference writes a multi-segment journal and returns its
// payloads plus the per-segment byte images and the final sealed list.
func buildReference(t *testing.T, dir string) (records [][]byte, segs []uint64, images map[uint64][]byte, sealed []sealedSegment) {
	t.Helper()
	j, err := Open(Options{Dir: dir, SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	records = payloads(30)
	for _, p := range records {
		if _, err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err = listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("reference journal has %d segments, want a real multi-segment one", len(segs))
	}
	images = make(map[uint64][]byte, len(segs))
	for _, seq := range segs {
		data, err := os.ReadFile(segPath(dir, seq))
		if err != nil {
			t.Fatal(err)
		}
		images[seq] = data
	}
	m, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	return records, segs, images, m.Sealed
}

// expectRecords counts how many whole frames fit in the first n bytes
// of a segment image.
func expectRecords(image []byte, n int64) int {
	count := 0
	off := int64(0)
	for off+frameHeader <= n {
		length := int64(image[off]) | int64(image[off+1])<<8 | int64(image[off+2])<<16 | int64(image[off+3])<<24
		if off+frameHeader+length > n {
			break
		}
		off += frameHeader + length
		count++
	}
	return count
}

// TestByteGranularityTruncationFuzz is the issue's truncation fuzz: for
// EVERY prefix length of the journal's logical byte stream (ordered
// segments concatenated), reconstruct the crash-consistent directory —
// earlier segments whole, the segment holding the cut truncated there,
// later segments absent, and the manifest as of that segment's epoch —
// and verify Open recovers exactly the records whose frames fit in the
// prefix, never a torn or corrupt one.
func TestByteGranularityTruncationFuzz(t *testing.T) {
	refDir := filepath.Join(t.TempDir(), "ref")
	records, segs, images, sealed := buildReference(t, refDir)

	base := t.TempDir()
	caseNo := 0
	recordsBefore := 0 // whole records in fully-present earlier segments
	for i, seq := range segs {
		image := images[seq]
		for cut := int64(0); cut <= int64(len(image)); cut++ {
			caseNo++
			dir := filepath.Join(base, fmt.Sprintf("case-%05d", caseNo))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			// Earlier segments, whole.
			for _, prev := range segs[:i] {
				if err := os.WriteFile(segPath(dir, prev), images[prev], 0o644); err != nil {
					t.Fatal(err)
				}
			}
			// The cut segment, truncated.
			if err := os.WriteFile(segPath(dir, seq), image[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			// The manifest as of this segment's epoch: it seals exactly
			// the earlier segments (rotation seals a segment before
			// creating its successor).
			if i > 0 {
				if err := writeManifest(OSFS(), dir, manifest{Sealed: sealed[:i]}); err != nil {
					t.Fatal(err)
				}
			}

			wantRecords := recordsBefore + expectRecords(image, cut)
			j, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("cut %d of %s: Open failed: %v", cut, segName(seq), err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			got, _ := collect(t, dir)
			if len(got) != wantRecords {
				t.Fatalf("cut %d of %s: recovered %d records, want %d", cut, segName(seq), len(got), wantRecords)
			}
			for r := range got {
				if !bytes.Equal(got[r], records[r]) {
					t.Fatalf("cut %d of %s: record %d corrupt", cut, segName(seq), r)
				}
			}
			// Keep the tree small: the directory is done.
			os.RemoveAll(dir)
		}
		recordsBefore += expectRecords(image, int64(len(image)))
	}
	if caseNo < 500 {
		t.Fatalf("only %d truncation cases; stream too short", caseNo)
	}
}

// TestConcurrentAppenders pins (under -race in CI) that concurrent
// Appends serialize correctly: dense LSNs, every record present exactly
// once at the position its returned LSN promised, across rotations.
func TestConcurrentAppenders(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(Options{Dir: dir, SegmentBytes: 512, Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const each = 50
	type placed struct {
		lsn     uint64
		payload []byte
	}
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		all []placed
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				p := []byte(fmt.Sprintf("g%d-i%d", g, i))
				lsn, err := j.Append(p)
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				mu.Lock()
				all = append(all, placed{lsn, p})
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if len(all) != goroutines*each {
		t.Fatalf("%d appends recorded", len(all))
	}
	got, _ := collect(t, dir)
	if len(got) != goroutines*each {
		t.Fatalf("replayed %d records, want %d", len(got), goroutines*each)
	}
	for _, pl := range all {
		if pl.lsn < 1 || pl.lsn > uint64(len(got)) {
			t.Fatalf("lsn %d out of range", pl.lsn)
		}
		if !bytes.Equal(got[pl.lsn-1], pl.payload) {
			t.Fatalf("lsn %d holds %q, appender was promised %q", pl.lsn, got[pl.lsn-1], pl.payload)
		}
	}
}
