package journal

import (
	"os"
	"path/filepath"
)

// FS is the journal's durability surface: every operation whose
// ordering matters for crash safety goes through it. Production
// journals use the real filesystem (osFS); the crash harness wraps it
// (CrashFS) to kill the process model at any individual write, fsync,
// or rename, which is how the kill-anywhere recovery tests drive the
// journal through every instant a SIGKILL could strike.
//
// Read-side operations (recovery scans, Replay) deliberately bypass FS
// and use the os package directly: recovery runs in the *next* process,
// after the crash, so injecting faults into it would model a different
// failure than the one this harness is for.
type FS interface {
	// Create creates (truncating) the file at path for appending.
	Create(path string) (File, error)
	// OpenAppend opens an existing file for appending.
	OpenAppend(path string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// SyncDir fsyncs the directory, making renames and creations in it
	// durable.
	SyncDir(dir string) error
}

// File is the writable handle the journal appends through.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// osFS is the production FS: the real filesystem.
type osFS struct{}

// OSFS returns the production filesystem implementation.
func OSFS() FS { return osFS{} }

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Rename(oldpath, newpath string) error {
	return os.Rename(oldpath, newpath)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
