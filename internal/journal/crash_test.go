package journal

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"cbreak/internal/guard/faultinject"
)

// crashWorkload appends records until the journal dies (or the workload
// ends), returning how many appends were acknowledged. It models a real
// writer faithfully: the first error is process death, nothing runs
// after it.
func crashWorkload(dir string, fs FS, records [][]byte) (acked int) {
	j, err := Open(Options{Dir: dir, FS: fs, SegmentBytes: 160})
	if err != nil {
		return 0
	}
	for _, p := range records {
		if _, err := j.Append(p); err != nil {
			break
		}
		acked++
	}
	j.Close()
	return acked
}

// TestKillAnywhereRecovery is the journal half of the issue's recovery
// invariant: for EVERY sync point of a rotating, fsync-per-record
// workload — every file create, write, fsync, rename, and directory
// sync — kill the process there (with and without a torn final write)
// and verify that reopening the directory recovers a clean prefix of
// the appended records that covers at least everything acknowledged,
// and that the journal is immediately writable again.
func TestKillAnywhereRecovery(t *testing.T) {
	records := payloads(25)

	// Dry run: count the workload's sync points.
	probe := faultinject.NewCrashPlan(0)
	dir := filepath.Join(t.TempDir(), "probe")
	if acked := crashWorkload(dir, CrashFS(OSFS(), probe), records); acked != len(records) {
		t.Fatalf("probe run acked %d of %d", acked, len(records))
	}
	total := probe.Count()
	if total < 40 {
		t.Fatalf("only %d sync points; workload too small to be interesting", total)
	}

	for k := 1; k <= total; k++ {
		for _, partial := range []int{-1, 0, 3} {
			name := fmt.Sprintf("die-at-%03d-partial-%d", k, partial)
			t.Run(name, func(t *testing.T) {
				dir := filepath.Join(t.TempDir(), "j")
				plan := faultinject.NewCrashPlan(k).WithPartialWrite(partial)
				acked := crashWorkload(dir, CrashFS(OSFS(), plan), records)
				if !plan.Crashed() {
					t.Fatalf("plan never fired (k=%d of %d)", k, total)
				}

				// The dead process's directory must recover: a clean
				// prefix, covering every acknowledged record.
				j, err := Open(Options{Dir: dir})
				if err != nil {
					t.Fatalf("recovery failed: %v", err)
				}
				got, _ := collect(t, dir)
				if len(got) < acked {
					t.Fatalf("recovered %d records, but %d were acknowledged durable", len(got), acked)
				}
				if len(got) > len(records) {
					t.Fatalf("recovered %d records from %d appends", len(got), len(records))
				}
				for i := range got {
					if !bytes.Equal(got[i], records[i]) {
						t.Fatalf("record %d = %q, want %q (corrupt record surfaced)", i, got[i], records[i])
					}
				}

				// Life goes on: the reopened journal accepts appends and
				// the new record lands after the recovered prefix.
				if _, err := j.Append([]byte("post-recovery")); err != nil {
					t.Fatalf("append after recovery: %v", err)
				}
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
				again, _ := collect(t, dir)
				if len(again) != len(got)+1 || string(again[len(got)]) != "post-recovery" {
					t.Fatalf("post-recovery append lost: %d vs %d records", len(again), len(got)+1)
				}
			})
		}
	}
}

// TestCrashedJournalIsDead pins the sticky-error semantics the crash
// model relies on: after the fatal sync point, every Append and Sync
// fails with the injected error and no LSN advances.
func TestCrashedJournalIsDead(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	plan := faultinject.NewCrashPlan(0)
	j, err := Open(Options{Dir: dir, FS: CrashFS(OSFS(), plan)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("alive")); err != nil {
		t.Fatal(err)
	}
	// Arm a fresh fatal point: the very next op dies.
	deadPlan := faultinject.NewCrashPlan(1)
	j.fs = CrashFS(OSFS(), deadPlan)
	j.mu.Lock()
	j.active = crashFile{f: j.active, plan: deadPlan}
	j.mu.Unlock()

	if _, err := j.Append([]byte("dying")); !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("fatal append error = %v", err)
	}
	lenAt := j.Len()
	if _, err := j.Append([]byte("dead")); !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("post-mortem append error = %v", err)
	}
	if err := j.Sync(); !errors.Is(err, faultinject.ErrCrashed) {
		t.Fatalf("post-mortem sync error = %v", err)
	}
	if j.Len() != lenAt {
		t.Fatal("LSN advanced on a dead journal")
	}
	if j.Err() == nil {
		t.Fatal("sticky error not set")
	}
	j.Close()
}
