package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// The manifest records which segments are sealed: fully written,
// fsynced, and immutable. It is replaced — never appended to — via the
// classic atomic-rename protocol (write MANIFEST.tmp, fsync it, rename
// over MANIFEST, fsync the directory), so a crash at any instant leaves
// either the old manifest or the new one, both self-consistent.
//
// Sealing order matters: a segment is sealed in the manifest *before*
// its successor is created, and the directory is fsynced between, so
// recovery can rely on "any segment with a successor is sealed". The
// manifest's record counts and byte sizes let recovery distinguish a
// torn tail (damage past the sealed range, truncated silently) from
// real corruption (damage inside it, which fails Open).

// manifestVersion is bumped on incompatible manifest-schema changes.
const manifestVersion = 1

// sealedSegment is one sealed segment's manifest entry.
type sealedSegment struct {
	Seq     uint64 `json:"seq"`
	Records uint64 `json:"records"`
	Bytes   int64  `json:"bytes"`
}

type manifest struct {
	Kind    string          `json:"kind"` // always "cbwal-manifest"
	Version int             `json:"version"`
	Sealed  []sealedSegment `json:"sealed"`
}

// ErrCorrupt is wrapped by every error that means the journal's sealed
// region is damaged (as opposed to a recoverable torn tail).
var ErrCorrupt = errors.New("journal: corrupt")

// writeManifest atomically replaces dir's manifest through fs, so the
// crash harness can kill the process model inside any step.
func writeManifest(fs FS, dir string, m manifest) error {
	m.Kind = "cbwal-manifest"
	m.Version = manifestVersion
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestTmp)
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: write manifest: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("journal: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: close manifest: %w", err)
	}
	if err := fs.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("journal: install manifest: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}

// readManifest loads dir's manifest. A missing manifest is an empty one
// (fresh journal, or a crash before the first rotation); an unreadable
// or mismatched one is corruption, because the atomic-rename protocol
// never exposes a partially written manifest.
func readManifest(dir string) (manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return manifest{}, nil
	}
	if err != nil {
		return manifest{}, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, fmt.Errorf("%w: unreadable manifest: %v", ErrCorrupt, err)
	}
	if m.Kind != "cbwal-manifest" {
		return manifest{}, fmt.Errorf("%w: %s is not a journal manifest", ErrCorrupt, dir)
	}
	if m.Version != manifestVersion {
		return manifest{}, fmt.Errorf("journal: manifest version %d, this binary speaks %d", m.Version, manifestVersion)
	}
	for i := 1; i < len(m.Sealed); i++ {
		if m.Sealed[i].Seq <= m.Sealed[i-1].Seq {
			return manifest{}, fmt.Errorf("%w: manifest seals out of order", ErrCorrupt)
		}
	}
	return m, nil
}
