package journal

import "cbreak/internal/guard/faultinject"

// CrashFS wraps an FS so that every durability operation is a
// faultinject sync point: the plan's k-th point fails with
// faultinject.ErrCrashed (a write optionally lands only a prefix of its
// buffer first — a torn write), and every later operation fails too.
// Bytes that reached the underlying FS before the crash are exactly the
// bytes a real power cut would have left on disk, so a test can reopen
// the directory afterwards and assert recovery.
func CrashFS(base FS, plan *faultinject.CrashPlan) FS {
	return crashFS{base: base, plan: plan}
}

type crashFS struct {
	base FS
	plan *faultinject.CrashPlan
}

func (c crashFS) Create(path string) (File, error) {
	if _, err := c.plan.Point("create", 0); err != nil {
		return nil, err
	}
	f, err := c.base.Create(path)
	if err != nil {
		return nil, err
	}
	return crashFile{f: f, plan: c.plan}, nil
}

func (c crashFS) OpenAppend(path string) (File, error) {
	if _, err := c.plan.Point("open", 0); err != nil {
		return nil, err
	}
	f, err := c.base.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return crashFile{f: f, plan: c.plan}, nil
}

func (c crashFS) Rename(oldpath, newpath string) error {
	if _, err := c.plan.Point("rename", 0); err != nil {
		return err
	}
	return c.base.Rename(oldpath, newpath)
}

func (c crashFS) SyncDir(dir string) error {
	if _, err := c.plan.Point("syncdir", 0); err != nil {
		return err
	}
	return c.base.SyncDir(dir)
}

type crashFile struct {
	f    File
	plan *faultinject.CrashPlan
}

// Write lands the allowed prefix before reporting the crash, so the
// on-disk state models a torn write rather than an all-or-nothing one.
func (c crashFile) Write(p []byte) (int, error) {
	allow, err := c.plan.Point("write", len(p))
	if allow > 0 {
		if n, werr := c.f.Write(p[:allow]); werr != nil {
			return n, werr
		}
	}
	if err != nil {
		return allow, err
	}
	return allow, nil
}

func (c crashFile) Sync() error {
	if _, err := c.plan.Point("sync", 0); err != nil {
		return err
	}
	return c.f.Sync()
}

// Close is not a sync point: closing makes no durability promise, and a
// dead process's descriptors close anyway. The underlying file still
// closes so tests don't leak descriptors.
func (c crashFile) Close() error { return c.f.Close() }
