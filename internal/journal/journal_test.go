package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// collect replays dir into a slice of payloads.
func collect(t *testing.T, dir string) ([][]byte, RecoveryInfo) {
	t.Helper()
	var got [][]byte
	info, err := Replay(dir, func(lsn uint64, p []byte) error {
		if lsn != uint64(len(got)+1) {
			t.Fatalf("lsn %d out of order (have %d records)", lsn, len(got))
		}
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, info
}

func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf(`{"record":%d,"pad":%q}`, i, strings.Repeat("x", i%37)))
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(50)
	for i, p := range want {
		lsn, err := j.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	if j.Len() != 50 {
		t.Fatalf("Len = %d", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, info := collect(t, dir)
	if len(got) != 50 || info.Records != 50 || info.TruncatedBytes != 0 {
		t.Fatalf("replay: %d records, info %+v", len(got), info)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestReopenContinuesAppending(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	want := payloads(30)
	for round := 0; round < 3; round++ {
		j, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if j.Len() != uint64(10*round) {
			t.Fatalf("round %d: Len = %d", round, j.Len())
		}
		for i := 10 * round; i < 10*(round+1); i++ {
			if _, err := j.Append(want[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := collect(t, dir)
	if len(got) != 30 {
		t.Fatalf("got %d records", len(got))
	}
	// Open/close cycles must not proliferate segments: everything fits
	// in the default segment size, so one file.
	seqs, err := listSegments(dir)
	if err != nil || len(seqs) != 1 {
		t.Fatalf("segments = %v err=%v, want exactly 1", seqs, err)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestRotationSealsSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(40)
	for _, p := range want {
		if _, err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 3 {
		t.Fatalf("only %d segments; rotation never fired", len(seqs))
	}
	m, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Sealed) != len(seqs)-1 {
		t.Fatalf("%d sealed of %d segments; every non-tail segment must be sealed", len(m.Sealed), len(seqs))
	}
	got, info := collect(t, dir)
	if len(got) != 40 || info.Segments != len(seqs) {
		t.Fatalf("replay: %d records across %d segments", len(got), info.Segments)
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch after rotation", i)
		}
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(5)
	for _, p := range want {
		if _, err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append half a frame by hand.
	path := segPath(dir, 1)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 100) // promises 100 bytes that never arrive
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j, err = Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rec := j.Recovery()
	if rec.Records != 5 || rec.TruncatedBytes != 8 || rec.TornSegment != segName(1) {
		t.Fatalf("recovery = %+v", rec)
	}
	// The journal is whole again: appends land after the truncation.
	if _, err := j.Append([]byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, info := collect(t, dir)
	if len(got) != 6 || info.TruncatedBytes != 0 {
		t.Fatalf("post-repair replay: %d records, info %+v", len(got), info)
	}
	if string(got[5]) != "after-crash" {
		t.Fatalf("last record = %q", got[5])
	}
}

func TestCorruptSealedSegmentRefusedNotTruncated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(Options{Dir: dir, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads(20) {
		if _, err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the FIRST (sealed) segment.
	path := segPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a corrupt sealed segment")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("error does not name corruption: %v", err)
	}
	if _, err := Replay(dir, func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("Replay surfaced records from a corrupt sealed segment")
	}
}

func TestZeroLengthTailTreatedAsTorn(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Model a filesystem that extended the file with zero blocks after
	// a crash: a zero length field must not decode as an empty record.
	path := segPath(dir, 1)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	j, err = Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if rec := j.Recovery(); rec.Records != 1 || rec.TruncatedBytes != 512 {
		t.Fatalf("recovery = %+v", rec)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncEachRecord, SyncInterval, SyncNone} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "j")
			j, err := Open(Options{Dir: dir, Sync: pol, Interval: 5 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range payloads(10) {
				if _, err := j.Append(p); err != nil {
					t.Fatal(err)
				}
			}
			if pol == SyncInterval {
				time.Sleep(25 * time.Millisecond) // let at least one group commit fire
			}
			if err := j.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if got, _ := collect(t, dir); len(got) != 10 {
				t.Fatalf("%d records under %s", len(got), pol)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncEachRecord, SyncInterval, SyncNone} {
		got, err := ParseSyncPolicy(pol.String())
		if err != nil || got != pol {
			t.Fatalf("round-trip %v: got %v err %v", pol, got, err)
		}
	}
	if _, err := ParseSyncPolicy("everysooften"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestAppendAfterCloseAndEmptyRecordRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(nil); err == nil {
		t.Fatal("empty record accepted")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestSegNameRoundTrip(t *testing.T) {
	for _, seq := range []uint64{1, 99, 100000000} {
		got, ok := parseSegName(segName(seq))
		if !ok || got != seq {
			t.Fatalf("round-trip %d: %d %v", seq, got, ok)
		}
	}
	for _, bad := range []string{"seg-.wal", "seg-12x4.wal", "MANIFEST", "x-00000001.wal"} {
		if _, ok := parseSegName(bad); ok {
			t.Fatalf("parsed %q", bad)
		}
	}
}

// TestReplayWhileWriterRotates races read-only Replay against a live
// writer crossing segment boundaries. A replayer that catches the
// rotation mid-flight (manifest read before the seal, listing after the
// successor appeared) must accept the completed segment, not report
// corruption; every snapshot must be a clean ordered prefix of the
// final record sequence.
func TestReplayWhileWriterRotates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	// Tiny segments so the writer rotates constantly under the reader.
	j, err := Open(Options{Dir: dir, Sync: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}

	const total = 400
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			if _, err := j.Append([]byte(fmt.Sprintf(`{"record":%d}`, i))); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()

	replays := 0
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		var n int
		_, err := Replay(dir, func(lsn uint64, p []byte) error {
			if lsn != uint64(n+1) {
				return fmt.Errorf("lsn %d after %d records", lsn, n)
			}
			want := fmt.Sprintf(`{"record":%d}`, n)
			if string(p) != want {
				return fmt.Errorf("record %d = %q, want %q", n, p, want)
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("replay #%d against live writer: %v", replays, err)
		}
		replays++
	}
	<-done
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, info := collect(t, dir)
	if len(got) != total {
		t.Fatalf("final replay has %d records, want %d", len(got), total)
	}
	if info.Segments < 2 {
		t.Fatalf("only %d segment(s): rotation never raced (shrink SegmentBytes)", info.Segments)
	}
}

// TestOpenStillRejectsUnsealedWithSuccessor pins the strict side of the
// live-rotation relaxation: Open owns the directory, so an unsealed
// segment with a successor remains corruption there even when the
// segment scans clean.
func TestOpenStillRejectsUnsealedWithSuccessor(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(Options{Dir: dir, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads(6) {
		if _, err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Forge the race artifact: drop the manifest, so every sealed
	// segment looks unsealed while successors exist.
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted an unsealed segment with a successor")
	}
	// Replay tolerates the same shape: clean segments, successors
	// present — indistinguishable from catching a live rotation.
	if _, err := Replay(dir, func(uint64, []byte) error { return nil }); err != nil {
		t.Fatalf("read-only replay rejected clean unsealed segments: %v", err)
	}
}
