package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// On-disk record framing. Every record is one frame:
//
//	offset 0: uint32 LE  payload length (1 .. maxRecord)
//	offset 4: uint32 LE  CRC-32C (Castagnoli) of the payload
//	offset 8: payload bytes
//
// Frames are written append-only and never padded, so a crash can only
// leave the *suffix* of a segment damaged. Recovery reads frames until
// the first one that is incomplete, has an impossible length, or fails
// its checksum; in the tail segment that point is the torn tail (the
// file is truncated there), anywhere else it is corruption and Open
// refuses the journal rather than surface a bad record.
//
// A zero length is impossible by construction (Append rejects empty
// payloads) and is treated as torn tail: filesystems that extend a file
// with zero blocks after a crash would otherwise fabricate an "empty
// record" whose empty-payload CRC (0) verifies.

const (
	frameHeader = 8
	// maxRecord bounds a single payload; a length field above it is
	// garbage bytes, not a record.
	maxRecord = 16 << 20

	segPrefix    = "seg-"
	segSuffix    = ".wal"
	manifestName = "MANIFEST"
	manifestTmp  = "MANIFEST.tmp"
)

// castagnoli is the CRC-32C table (the checksum used by ext4, btrfs,
// and most storage formats; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends the frame for payload to dst and returns it.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// frameSize returns the on-disk size of a payload's frame.
func frameSize(payload []byte) int64 { return int64(frameHeader + len(payload)) }

// segName formats the file name of segment seq.
func segName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix)
}

// parseSegName inverts segName.
func parseSegName(name string) (seq uint64, ok bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(digits) == 0 {
		return 0, false
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// segScan is the result of scanning one segment file.
type segScan struct {
	payloads [][]byte
	// good is the byte offset of the end of the last valid frame.
	good int64
	// size is the file size.
	size int64
	// badReason is non-empty when the bytes after good do not form a
	// valid frame ("torn frame", "bad checksum", ...).
	badReason string
}

// clean reports whether the segment parsed end to end.
func (s segScan) clean() bool { return s.good == s.size }

// scanSegment reads every valid frame of the segment file at path,
// stopping at the first invalid one. It never fails on bad frames —
// classification (torn tail vs corruption) is the caller's job, because
// it depends on whether the segment is sealed and whether it is last.
func scanSegment(path string) (segScan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segScan{}, err
	}
	s := segScan{size: int64(len(data))}
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return s, nil
		}
		if len(rest) < frameHeader {
			s.badReason = "torn frame header"
			return s, nil
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		if length == 0 || length > maxRecord {
			s.badReason = fmt.Sprintf("impossible record length %d", length)
			return s, nil
		}
		if int64(len(rest)) < frameHeader+int64(length) {
			s.badReason = "torn record payload"
			return s, nil
		}
		payload := rest[frameHeader : frameHeader+int64(length)]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			s.badReason = "bad checksum"
			return s, nil
		}
		// Copy out: data is one big read-only buffer we are about to
		// drop; callers keep payloads.
		s.payloads = append(s.payloads, append([]byte(nil), payload...))
		off += frameHeader + int64(length)
		s.good = off
	}
}

// listSegments returns the segment sequence numbers present in dir, in
// ascending order.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// segPath joins dir and the segment seq's file name.
func segPath(dir string, seq uint64) string { return filepath.Join(dir, segName(seq)) }
