package sink

import (
	"path/filepath"
	"sync"
	"testing"

	"cbreak/internal/core"
	"cbreak/internal/guard"
	"cbreak/internal/journal"
)

// TestEngineTeeRoundTrip drives a real engine with the sink attached:
// a breakpoint rendezvous plus an external incident must land in the
// journal and replay typed.
func TestEngineTeeRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sink")
	s, err := Open(dir, journal.SyncEachRecord)
	if err != nil {
		t.Fatal(err)
	}

	e := core.NewEngine()
	e.SetDurableSink(s)
	if !e.DurableSinkInstalled() {
		t.Fatal("sink not installed")
	}
	obj := new(int)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); e.TriggerHere(core.NewConflictTrigger("sink-bp", obj), true, core.Options{}) }()
	go func() { defer wg.Done(); e.TriggerHere(core.NewConflictTrigger("sink-bp", obj), false, core.Options{}) }()
	wg.Wait()
	e.RecordIncident(guard.KindPanic, "sink-bp", 42, "absorbed: boom")
	if err := s.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var events, incidents, hits int
	if _, err := Replay(dir, func(en Entry) error {
		switch {
		case en.Event != nil:
			events++
			if en.Event.Breakpoint != "sink-bp" {
				t.Fatalf("event breakpoint = %q", en.Event.Breakpoint)
			}
			if en.Event.Event == "hit" {
				hits++
			}
		case en.Incident != nil:
			incidents++
			if en.Incident.Incident != "panic" || en.Incident.GID != 42 || en.Incident.Detail != "absorbed: boom" {
				t.Fatalf("incident = %+v", *en.Incident)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// A rendezvous logs both arrivals, the postponement, and the hit.
	if events < 4 || hits < 1 {
		t.Fatalf("replayed %d events (%d hits)", events, hits)
	}
	if incidents != 1 {
		t.Fatalf("replayed %d incidents, want 1", incidents)
	}
}

// TestSinkDetached pins that removing the sink stops the tee without
// touching engine behavior.
// TestSyncFlushesWithoutClose is the drain-time regression test: a
// sink on the interval group-commit policy must expose every record
// already appended — to a concurrent read-only Replay and to fsync —
// after Sync(), with the journal still open and appendable. cbserverd
// calls exactly this at the top of its SIGTERM drain, before the
// admin→proxy→app teardown, so a kill during the drain bound cannot
// lose buffered telemetry.
func TestSyncFlushesWithoutClose(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sink")
	s, err := Open(dir, journal.SyncInterval)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e := core.NewEngine()
	e.SetDurableSink(s)
	for i := 0; i < 10; i++ {
		e.RecordIncident(guard.KindStall, "bp", uint64(i), "pre-drain")
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	var n uint64
	if _, err := Replay(dir, func(Entry) error { n++; return nil }); err != nil {
		t.Fatalf("replay while open: %v", err)
	}
	if n != 10 {
		t.Fatalf("replay after Sync sees %d records, want 10", n)
	}
	// The journal must still accept appends after a drain-time Sync —
	// the drain itself produces incidents that should land too.
	e.RecordIncident(guard.KindStall, "bp", 99, "during-drain")
	if err := s.Err(); err != nil {
		t.Fatalf("append after Sync: %v", err)
	}
	if got := s.Len(); got != 11 {
		t.Fatalf("journal holds %d records, want 11", got)
	}
}

func TestSinkDetached(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sink")
	s, err := Open(dir, journal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine()
	e.SetDurableSink(s)
	e.RecordIncident(guard.KindStall, "bp", 1, "one")
	e.SetDurableSink(nil)
	if e.DurableSinkInstalled() {
		t.Fatal("sink still installed after nil")
	}
	e.RecordIncident(guard.KindStall, "bp", 2, "two")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var n uint64
	if _, err := Replay(dir, func(Entry) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("journal holds %d records after detach, want 1", n)
	}
	if got := e.IncidentCount(guard.KindStall); got != 2 {
		t.Fatalf("engine incident count = %d, want 2 (detach must not drop in-memory log)", got)
	}
}

// TestReplayWhileEngineAppends replays the sink journal repeatedly
// while a live engine is still appending through it: every snapshot
// must be a clean, typed record prefix (no parse errors, no unknown
// kinds, LSNs dense from 1), and the final post-Close replay must hold
// everything the engine emitted.
func TestReplayWhileEngineAppends(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sink")
	s, err := Open(dir, journal.SyncInterval)
	if err != nil {
		t.Fatal(err)
	}
	e := core.NewEngine()
	e.SetDurableSink(s)

	const pairs = 40
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < pairs; i++ {
			obj := new(int)
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				e.TriggerHere(core.NewConflictTrigger("sink.race", obj), true, core.Options{})
			}()
			go func() {
				defer wg.Done()
				e.TriggerHere(core.NewConflictTrigger("sink.race", obj), false, core.Options{})
			}()
			wg.Wait()
			e.RecordIncident(guard.KindStall, "sink.race", 0, "concurrent replay probe")
		}
	}()

	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		var lsn uint64
		if _, err := Replay(dir, func(en Entry) error {
			lsn++
			if en.LSN != lsn {
				t.Fatalf("LSN %d after %d records", en.LSN, lsn-1)
			}
			if (en.Event == nil) == (en.Incident == nil) {
				t.Fatalf("record %d is not exactly one of event/incident: %+v", en.LSN, en)
			}
			return nil
		}); err != nil {
			t.Fatalf("replay against live engine: %v", err)
		}
	}
	<-done
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	events, incidents := 0, 0
	if _, err := Replay(dir, func(en Entry) error {
		if en.Event != nil {
			events++
		} else {
			incidents++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if incidents != pairs {
		t.Fatalf("replayed %d incidents, want %d", incidents, pairs)
	}
	// Each rendezvous logs at least arrived+arrived+hit.
	if events < 3*pairs {
		t.Fatalf("replayed only %d events for %d rendezvous pairs", events, pairs)
	}
}
