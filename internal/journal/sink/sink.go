// Package sink adapts the crash-safe write-ahead journal
// (internal/journal) to the engine's DurableSink interface: every
// engine event and guard incident is framed as one JSON record, so a
// post-mortem on a crashed trial replays exactly the breakpoint history
// the in-memory rings lost with the process.
//
// Payloads are JSON text inside the journal's binary frames, so the
// usual field tricks work on raw segments: `grep -a '"panic"'
// <dir>/seg-*.wal` finds absorbed panics without any tooling.
package sink

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"cbreak/internal/core"
	"cbreak/internal/guard"
	"cbreak/internal/journal"
)

// Record kinds, the "kind" discriminator of every payload.
const (
	// KindEvent marks an engine event record.
	KindEvent = "engine-event"
	// KindIncident marks a guard incident record.
	KindIncident = "guard-incident"
)

// EventRecord is the JSON shape of one journaled engine event.
type EventRecord struct {
	Kind       string    `json:"kind"` // KindEvent
	Seq        uint64    `json:"seq"`
	When       time.Time `json:"when"`
	Event      string    `json:"event"` // arrived|postponed|hit|timeout
	Breakpoint string    `json:"breakpoint"`
	GID        uint64    `json:"gid"`
	First      bool      `json:"first"`
}

// IncidentRecord is the JSON shape of one journaled guard incident.
type IncidentRecord struct {
	Kind       string    `json:"kind"` // KindIncident
	When       time.Time `json:"when"`
	Incident   string    `json:"incident"` // guard.IncidentKind label
	Breakpoint string    `json:"breakpoint"`
	GID        uint64    `json:"gid"`
	Detail     string    `json:"detail,omitempty"`
}

// Sink journals engine events and guard incidents. It implements
// core.DurableSink and is safe for concurrent use (the journal
// serializes appends). Per the DurableSink contract the engine ignores
// sink failures, so the Sink swallows append errors after remembering
// the first one; check Err after the run.
type Sink struct {
	j *journal.Journal

	mu  sync.Mutex
	err error
}

// Open opens (creating or continuing) the sink journal in dir. Interval
// group-commit is the recommended policy: events are produced at
// breakpoint-arrival rate, and an fsync each would serialize the very
// schedules the engine exists to explore.
func Open(dir string, pol journal.SyncPolicy) (*Sink, error) {
	return OpenOptions(journal.Options{Dir: dir, Sync: pol})
}

// OpenOptions opens the sink over a fully-specified journal — the seam
// the chaos scenarios use to mount a fault-injecting FS (journal.CrashFS)
// under a live app worker's telemetry journal.
func OpenOptions(opts journal.Options) (*Sink, error) {
	j, err := journal.Open(opts)
	if err != nil {
		return nil, fmt.Errorf("sink: %w", err)
	}
	return &Sink{j: j}, nil
}

// RecordEvent journals one engine event (core.DurableSink).
func (s *Sink) RecordEvent(ev core.Event) {
	s.append(EventRecord{
		Kind: KindEvent, Seq: ev.Seq, When: ev.When, Event: ev.Kind.String(),
		Breakpoint: ev.Breakpoint, GID: ev.GID, First: ev.First,
	})
}

// RecordIncident journals one guard incident (core.DurableSink).
func (s *Sink) RecordIncident(in guard.Incident) {
	s.append(IncidentRecord{
		Kind: KindIncident, When: in.When, Incident: in.Kind.String(),
		Breakpoint: in.Breakpoint, GID: in.GID, Detail: in.Detail,
	})
}

func (s *Sink) append(v any) {
	payload, err := json.Marshal(v)
	if err == nil {
		_, err = s.j.Append(payload)
	}
	if err != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		s.mu.Unlock()
	}
}

// Err returns the first append failure, if any — typically the
// journal's sticky error after a disk problem.
func (s *Sink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Len returns how many records the journal holds.
func (s *Sink) Len() uint64 { return s.j.Len() }

// Dir returns the journal directory.
func (s *Sink) Dir() string { return s.j.Dir() }

// Sync flushes every buffered record to stable storage without closing
// the journal. Long-running daemons call it at drain time, before the
// admin→proxy→app teardown severs the paths that produce records, so a
// SIGTERM loses nothing the interval group-commit was still holding.
func (s *Sink) Sync() error { return s.j.Sync() }

// Close syncs and closes the journal.
func (s *Sink) Close() error { return s.j.Close() }

// Entry is one replayed sink record: exactly one of Event or Incident
// is non-nil.
type Entry struct {
	LSN      uint64
	Event    *EventRecord
	Incident *IncidentRecord
}

// Replay reads a sink journal for post-mortem analysis. The journal
// layer has already dropped any torn tail, so every entry here was
// written whole; an unknown kind is an error (schema drift, not
// corruption).
func Replay(dir string, fn func(Entry) error) (journal.RecoveryInfo, error) {
	return journal.Replay(dir, func(lsn uint64, payload []byte) error {
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(payload, &probe); err != nil {
			return fmt.Errorf("sink: record %d does not parse: %v", lsn, err)
		}
		switch probe.Kind {
		case KindEvent:
			var rec EventRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				return fmt.Errorf("sink: event record %d: %v", lsn, err)
			}
			return fn(Entry{LSN: lsn, Event: &rec})
		case KindIncident:
			var rec IncidentRecord
			if err := json.Unmarshal(payload, &rec); err != nil {
				return fmt.Errorf("sink: incident record %d: %v", lsn, err)
			}
			return fn(Entry{LSN: lsn, Incident: &rec})
		default:
			return fmt.Errorf("sink: record %d has unknown kind %q", lsn, probe.Kind)
		}
	})
}
