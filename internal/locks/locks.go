// Package locks provides identity-bearing synchronization primitives that
// track, per goroutine, the set of currently held locks. The tracking
// feeds two consumers:
//
//   - breakpoint predicate refinements such as "only trigger when a lock
//     of class BasicCaret is held" (section 6.3 of the paper), and
//   - the conflict detectors in internal/detect, which need lock-set and
//     lock-contention information (Methodology II, section 5).
//
// A Mutex here is a plain sync.Mutex plus a name, an optional class, and
// bookkeeping. The bookkeeping uses the goroutine id, so application code
// does not have to thread context values through every call.
package locks

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Class groups locks for class-based predicates (the paper's
// isLockTypeHeld(type)). Compare classes by pointer identity.
type Class struct {
	// Name is a human-readable label, e.g. "BasicCaret".
	Name string
}

// NewClass returns a new lock class with the given name.
func NewClass(name string) *Class { return &Class{Name: name} }

// waitRec records one goroutine's current blocking acquisition: the
// lock, the source-site label of the acquisition, and when the wait
// began. It is the raw material of a wait-for graph edge.
type waitRec struct {
	m     *Mutex
	site  string
	since time.Time
}

// registry tracks which locks each goroutine currently holds and which
// lock it is currently blocked on (for live deadlock detection).
type registry struct {
	mu      sync.Mutex
	held    map[uint64][]*Mutex // goroutine id -> stack of held locks
	waiting map[uint64]waitRec  // goroutine id -> lock it is blocked on
}

var reg = &registry{held: make(map[uint64][]*Mutex)}

// Mutex is a named, class-tagged mutual-exclusion lock with held-set
// tracking. The zero value is not usable; create with NewMutex.
type Mutex struct {
	mu    sync.Mutex
	name  string
	class *Class

	// owner is the gid currently holding the lock (0 when free) and
	// ownerSite the site label of its acquisition; both are guarded by
	// ownMu because they are read by contention detection while another
	// goroutine holds mu.
	ownMu     sync.Mutex
	owner     uint64
	ownerSite string

	// ownersFn, when set, supplies the full owner set instead of the
	// single owner field. RWMutex shadows install it so a read-held
	// lock reports every reader as an owner in wait-graph edges.
	// Installed once at shadow creation, before the shadow is
	// published; treated as immutable afterwards.
	ownersFn func() []uint64

	// observers are invoked on every Lock/Unlock transition; the
	// detectors register themselves here.
	obsMu     sync.Mutex
	observers []Observer
}

// Observer receives lock transition events. BeforeLock fires before the
// goroutine blocks on acquisition (this is where contention and
// deadlock-cycle detection hook in); AfterLock and BeforeUnlock fire with
// the lock held. site is the source label passed to LockAt/UnlockAt, or
// "" for the untagged variants.
type Observer interface {
	BeforeLock(m *Mutex, gid uint64, site string)
	AfterLock(m *Mutex, gid uint64, site string)
	BeforeUnlock(m *Mutex, gid uint64, site string)
}

// NewMutex returns a named mutex with no class.
func NewMutex(name string) *Mutex { return &Mutex{name: name} }

// NewClassMutex returns a named mutex tagged with a class.
func NewClassMutex(name string, class *Class) *Mutex {
	return &Mutex{name: name, class: class}
}

// Name returns the mutex's name.
func (m *Mutex) Name() string { return m.name }

// Class returns the mutex's class, or nil.
func (m *Mutex) Class() *Class { return m.class }

// Observe registers an observer for this mutex's transitions.
func (m *Mutex) Observe(o Observer) {
	m.obsMu.Lock()
	m.observers = append(m.observers, o)
	m.obsMu.Unlock()
}

func (m *Mutex) snapshot() []Observer {
	m.obsMu.Lock()
	defer m.obsMu.Unlock()
	if len(m.observers) == 0 {
		return nil
	}
	out := make([]Observer, len(m.observers))
	copy(out, m.observers)
	return out
}

// Lock acquires the mutex, recording it in the goroutine's held set.
func (m *Mutex) Lock() { m.LockAt("") }

// LockAt is Lock tagged with a source-site label, which detectors use in
// contention and deadlock reports (the paper's "line 623"-style sites).
func (m *Mutex) LockAt(site string) {
	gid := GoroutineID()
	for _, o := range m.snapshot() {
		o.BeforeLock(m, gid, site)
	}
	reg.setWaiting(gid, m, site)
	m.mu.Lock()
	reg.setWaiting(gid, nil, "")
	m.setOwner(gid, site)
	reg.push(gid, m)
	for _, o := range m.snapshot() {
		o.AfterLock(m, gid, site)
	}
}

// TryLock tries to acquire the mutex without blocking and reports whether
// it succeeded.
func (m *Mutex) TryLock() bool {
	gid := GoroutineID()
	if !m.mu.TryLock() {
		return false
	}
	m.setOwner(gid, "")
	reg.push(gid, m)
	for _, o := range m.snapshot() {
		o.AfterLock(m, gid, "")
	}
	return true
}

// Unlock releases the mutex and removes it from the goroutine's held set.
// Like sync.Mutex, unlocking from a goroutine other than the locker is a
// programming error; the held-set entry is removed from the unlocking
// goroutine's set if present.
func (m *Mutex) Unlock() { m.UnlockAt("") }

// UnlockAt is Unlock tagged with a source-site label.
func (m *Mutex) UnlockAt(site string) {
	gid := GoroutineID()
	for _, o := range m.snapshot() {
		o.BeforeUnlock(m, gid, site)
	}
	m.setOwner(0, "")
	reg.pop(gid, m)
	m.mu.Unlock()
}

// With runs f while holding the mutex; it is the analog of a Java
// synchronized block.
func (m *Mutex) With(f func()) { m.WithAt("", f) }

// WithAt is With tagged with a source-site label.
func (m *Mutex) WithAt(site string, f func()) {
	m.LockAt(site)
	defer m.UnlockAt(site)
	f()
}

func (m *Mutex) setOwner(gid uint64, site string) {
	m.ownMu.Lock()
	m.owner = gid
	m.ownerSite = site
	m.ownMu.Unlock()
}

// Owner returns the gid currently holding the lock (0 if free) and the
// site label of the owning acquisition.
func (m *Mutex) Owner() (uint64, string) {
	m.ownMu.Lock()
	defer m.ownMu.Unlock()
	return m.owner, m.ownerSite
}

// Owners returns every goroutine currently holding the lock. A plain
// Mutex has at most one owner; an RWMutex shadow reports the writer or
// the full reader set, so wait-graph edges see every goroutine a
// blocked acquisition is actually waiting on.
func (m *Mutex) Owners() []uint64 {
	if fn := m.ownersFn; fn != nil {
		return fn()
	}
	m.ownMu.Lock()
	owner := m.owner
	m.ownMu.Unlock()
	if owner == 0 {
		return nil
	}
	return []uint64{owner}
}

func (r *registry) push(gid uint64, m *Mutex) {
	r.mu.Lock()
	r.held[gid] = append(r.held[gid], m)
	r.mu.Unlock()
}

func (r *registry) pop(gid uint64, m *Mutex) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.held[gid]
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == m {
			s = append(s[:i], s[i+1:]...)
			break
		}
	}
	if len(s) == 0 {
		delete(r.held, gid)
	} else {
		r.held[gid] = s
	}
}

// Held returns the locks currently held by the calling goroutine, in
// acquisition order.
func Held() []*Mutex {
	gid := GoroutineID()
	reg.mu.Lock()
	defer reg.mu.Unlock()
	s := reg.held[gid]
	out := make([]*Mutex, len(s))
	copy(out, s)
	return out
}

// HeldBy returns the locks currently held by the goroutine with id gid.
func HeldBy(gid uint64) []*Mutex {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	s := reg.held[gid]
	out := make([]*Mutex, len(s))
	copy(out, s)
	return out
}

// HeldAll returns a snapshot of every goroutine's held-lock stack, in
// acquisition order. The wait-graph supervisor uses it to trace which
// blocked goroutines a postponed goroutine is wedging through the
// locks it still holds.
func HeldAll() map[uint64][]*Mutex {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	out := make(map[uint64][]*Mutex, len(reg.held))
	for g, s := range reg.held {
		cp := make([]*Mutex, len(s))
		copy(cp, s)
		out[g] = cp
	}
	return out
}

// IsHeld reports whether the calling goroutine holds m.
func IsHeld(m *Mutex) bool {
	for _, h := range Held() {
		if h == m {
			return true
		}
	}
	return false
}

// IsClassHeld reports whether the calling goroutine holds any lock of the
// given class. It implements the paper's isLockTypeHeld(type) predicate
// refinement.
func IsClassHeld(c *Class) bool {
	for _, h := range Held() {
		if h.class == c {
			return true
		}
	}
	return false
}

// ClassHeldPred returns a closure suitable for core.Options.ExtraLocal
// that is true while the calling goroutine holds a lock of class c.
func ClassHeldPred(c *Class) func() bool {
	return func() bool { return IsClassHeld(c) }
}

// HeldNames returns the names of the locks held by the calling goroutine,
// sorted, for diagnostics.
func HeldNames() []string {
	hs := Held()
	names := make([]string, len(hs))
	for i, h := range hs {
		names[i] = h.name
	}
	sort.Strings(names)
	return names
}

// String implements fmt.Stringer for diagnostics.
func (m *Mutex) String() string {
	if m.class != nil {
		return fmt.Sprintf("Mutex(%s:%s)", m.class.Name, m.name)
	}
	return fmt.Sprintf("Mutex(%s)", m.name)
}

// GoroutineID returns the calling goroutine's id (parsed from the runtime
// stack header). Exported because the detect package keys per-thread
// state on it.
func GoroutineID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, err := strconv.ParseUint(string(s), 10, 64)
	if err != nil {
		return 0
	}
	return id
}
