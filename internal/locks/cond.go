package locks

import (
	"sync"
	"time"
)

// Cond is a condition variable associated with a Mutex, mirroring Java's
// wait/notify/notifyAll on a monitor. It exists (rather than using
// sync.Cond directly) so that:
//
//   - waits can carry a timeout, which the stall-detection harness and
//     the missed-notification benchmarks need, and
//   - Wait/Notify transitions keep the held-lock registry consistent and
//     are observable by detectors.
//
// The usual protocol applies: the caller must hold L around Wait and
// around the state change preceding Notify.
type Cond struct {
	// L is the monitor lock guarding the condition.
	L *Mutex

	mu      sync.Mutex // guards waiters
	waiters []chan struct{}
	name    string

	// notifies and misses count signals delivered to a waiter vs
	// dropped on the floor (no waiter present). A missed notification
	// bug manifests as a notify with no waiter followed by a wait that
	// never returns; the counters let tests assert the mechanism.
	notifies int
	misses   int

	// observers receive wait/notify transitions; the lost-notification
	// detector hooks in here.
	observers []CondObserver
}

// CondObserver receives condition-variable events. OnWait fires when a
// goroutine registers to wait; OnNotify fires for every notification
// with delivered=false when it found no waiter (a lost notification
// candidate). site is the label passed to the *At variants, or "".
type CondObserver interface {
	OnWait(c *Cond, gid uint64, site string)
	OnNotify(c *Cond, gid uint64, site string, delivered bool)
}

// Observe registers an observer for this condition's transitions.
func (c *Cond) Observe(o CondObserver) {
	c.mu.Lock()
	c.observers = append(c.observers, o)
	c.mu.Unlock()
}

// snapshotObs copies the observer list; c.mu must not be held.
func (c *Cond) snapshotObs() []CondObserver {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.observers) == 0 {
		return nil
	}
	out := make([]CondObserver, len(c.observers))
	copy(out, c.observers)
	return out
}

// NewCond returns a condition variable named name on monitor l.
func NewCond(name string, l *Mutex) *Cond { return &Cond{L: l, name: name} }

// Name returns the condition's name.
func (c *Cond) Name() string { return c.name }

// Wait atomically releases c.L and suspends the goroutine until another
// goroutine calls Notify or NotifyAll, then re-acquires c.L. Unlike
// sync.Cond, a notification is consumed by exactly one waiting goroutine
// per Notify.
func (c *Cond) Wait() { c.wait(0, "") }

// WaitAt is Wait tagged with a source-site label for observers.
func (c *Cond) WaitAt(site string) { c.wait(0, site) }

// WaitTimeout is Wait with an upper bound; it reports false if the
// timeout expired before a notification arrived. A zero or negative
// timeout waits forever.
func (c *Cond) WaitTimeout(d time.Duration) bool { return c.wait(d, "") }

// WaitTimeoutAt is WaitTimeout tagged with a source-site label.
func (c *Cond) WaitTimeoutAt(d time.Duration, site string) bool { return c.wait(d, site) }

func (c *Cond) wait(d time.Duration, site string) bool {
	for _, o := range c.snapshotObs() {
		o.OnWait(c, GoroutineID(), site)
	}
	ch := make(chan struct{}, 1)
	c.mu.Lock()
	c.waiters = append(c.waiters, ch)
	c.mu.Unlock()

	c.L.Unlock()
	ok := true
	if d > 0 {
		timer := time.NewTimer(d)
		select {
		case <-ch:
		case <-timer.C:
			ok = false
			c.removeWaiter(ch)
		}
		timer.Stop()
	} else {
		<-ch
	}
	c.L.Lock()
	return ok
}

func (c *Cond) removeWaiter(ch chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, w := range c.waiters {
		if w == ch {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Notify wakes one waiting goroutine, if any. If no goroutine is
// waiting, the notification is lost — exactly the semantics that make
// missed-notification Heisenbugs possible.
func (c *Cond) Notify() { c.NotifyAt("") }

// NotifyAt is Notify tagged with a source-site label for observers.
func (c *Cond) NotifyAt(site string) {
	c.mu.Lock()
	delivered := len(c.waiters) > 0
	if !delivered {
		c.misses++
	} else {
		ch := c.waiters[0]
		c.waiters = c.waiters[1:]
		c.notifies++
		ch <- struct{}{}
	}
	obs := make([]CondObserver, len(c.observers))
	copy(obs, c.observers)
	c.mu.Unlock()
	gid := GoroutineID()
	for _, o := range obs {
		o.OnNotify(c, gid, site, delivered)
	}
}

// NotifyAll wakes every waiting goroutine.
func (c *Cond) NotifyAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.waiters) == 0 {
		c.misses++
		return
	}
	for _, ch := range c.waiters {
		ch <- struct{}{}
		c.notifies++
	}
	c.waiters = nil
}

// Waiters returns the number of goroutines currently waiting.
func (c *Cond) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

// Missed returns how many notifications were dropped because no waiter
// was present.
func (c *Cond) Missed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// Delivered returns how many notifications reached a waiter.
func (c *Cond) Delivered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.notifies
}
