package locks

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file adds *runtime* deadlock detection: while the detect package
// reports potential lock-order inversions ahead of time, FindDeadlocks
// inspects the live waits-for graph — which goroutine is blocked on
// which lock, and who owns it — and returns the actual cycles currently
// in progress. The experiment harness uses it to distinguish "stalled in
// a deadlock" from "stalled waiting for a lost notification", the two
// stall classes of the paper's Table 1.

// waitingFor tracks which Mutex each goroutine is currently blocked on.
// It lives in the same registry as the held sets.
func (r *registry) setWaiting(gid uint64, m *Mutex, site string) {
	r.mu.Lock()
	if r.waiting == nil {
		r.waiting = make(map[uint64]waitRec)
	}
	if m == nil {
		delete(r.waiting, gid)
	} else {
		r.waiting[gid] = waitRec{m: m, site: site, since: time.Now()}
	}
	r.mu.Unlock()
}

// WaitEdge is one exported edge of the live wait-for graph: a blocked
// goroutine, the lock it is blocked on, and the goroutines that
// currently own that lock. Owners is multi-valued because a read-held
// RWMutex is owned by every reader at once.
type WaitEdge struct {
	// Waiter is the blocked goroutine.
	Waiter uint64
	// Lock is the contested lock's name and Class its class name ("" if
	// untagged).
	Lock  string
	Class string
	// Site is the source-site label of the blocked acquisition and
	// Since when the wait began.
	Site  string
	Since time.Time
	// Owners are the goroutines currently holding the lock (empty if it
	// was released while the snapshot was assembled) and OwnerSite the
	// site label of the owning acquisition when a single owner is known.
	Owners    []uint64
	OwnerSite string

	// lock keeps the Mutex identity so edges can be joined against
	// HeldAll snapshots by pointer.
	lock *Mutex
}

// Mutex returns the contested lock's identity, for joining edges
// against HeldAll snapshots.
func (e WaitEdge) Mutex() *Mutex { return e.lock }

// WaitEdges snapshots the live wait-for graph's lock edges: one edge
// per goroutine currently blocked inside an instrumented acquisition,
// sorted by waiter gid. Ownership is resolved after the registry
// snapshot is taken, so an edge may report no owners if the lock was
// handed over concurrently — consumers must treat edges as a sample,
// not a transaction.
func WaitEdges() []WaitEdge {
	reg.mu.Lock()
	recs := make(map[uint64]waitRec, len(reg.waiting))
	for g, rec := range reg.waiting {
		recs[g] = rec
	}
	reg.mu.Unlock()

	gids := make([]uint64, 0, len(recs))
	for g := range recs {
		gids = append(gids, g)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })

	out := make([]WaitEdge, 0, len(gids))
	for _, g := range gids {
		rec := recs[g]
		class := ""
		if c := rec.m.Class(); c != nil {
			class = c.Name
		}
		_, ownerSite := rec.m.Owner()
		out = append(out, WaitEdge{
			Waiter: g, Lock: rec.m.Name(), Class: class,
			Site: rec.site, Since: rec.since,
			Owners: rec.m.Owners(), OwnerSite: ownerSite,
			lock: rec.m,
		})
	}
	return out
}

// Deadlock describes one cycle in the live waits-for graph.
type Deadlock struct {
	// GIDs are the goroutines in the cycle, in cycle order.
	GIDs []uint64
	// Locks are the lock names each goroutine is blocked on, aligned
	// with GIDs.
	Locks []string
}

// String renders the cycle.
func (d Deadlock) String() string {
	parts := make([]string, len(d.GIDs))
	for i, g := range d.GIDs {
		parts[i] = fmt.Sprintf("g%d waits %s", g, d.Locks[i])
	}
	return strings.Join(parts, " -> ")
}

// FindDeadlocks scans the live waits-for graph and returns every cycle:
// goroutine A blocked on a lock owned by B, B blocked on a lock owned by
// C, ... back to A. Only instrumented Mutexes participate (an RWMutex's
// write side reports through its shadow owner).
func FindDeadlocks() []Deadlock {
	reg.mu.Lock()
	waiting := make(map[uint64]*Mutex, len(reg.waiting))
	for g, rec := range reg.waiting {
		waiting[g] = rec.m
	}
	reg.mu.Unlock()

	var out []Deadlock
	seen := make(map[uint64]bool)
	// Deterministic iteration for stable output.
	gids := make([]uint64, 0, len(waiting))
	for g := range waiting {
		gids = append(gids, g)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })

	for _, start := range gids {
		if seen[start] {
			continue
		}
		var pathG []uint64
		var pathL []string
		index := make(map[uint64]int)
		g := start
		for {
			m, blocked := waiting[g]
			if !blocked {
				break
			}
			if at, revisit := index[g]; revisit {
				// Cycle found: path[at:] is the cycle.
				d := Deadlock{GIDs: append([]uint64(nil), pathG[at:]...),
					Locks: append([]string(nil), pathL[at:]...)}
				out = append(out, d)
				break
			}
			index[g] = len(pathG)
			pathG = append(pathG, g)
			pathL = append(pathL, m.Name())
			owner, _ := m.Owner()
			if owner == 0 || owner == g {
				break
			}
			g = owner
		}
		for _, g := range pathG {
			seen[g] = true
		}
	}
	return out
}

// Deadlocked reports whether any live deadlock cycle exists.
func Deadlocked() bool { return len(FindDeadlocks()) > 0 }
