package locks

import (
	"testing"
	"time"
)

// edgesFor filters the global wait-edge snapshot down to one lock name;
// other tests deliberately leak blocked goroutines into the registry,
// so assertions must scope to this test's locks.
func edgesFor(name string) []WaitEdge {
	var out []WaitEdge
	for _, e := range WaitEdges() {
		if e.Lock == name {
			out = append(out, e)
		}
	}
	return out
}

func waitForEdges(t *testing.T, name string, n int) []WaitEdge {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		es := edgesFor(name)
		if len(es) >= n {
			return es
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d wait edges on %s (have %d)", n, name, len(es))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWaitEdgeCarriesSiteClassAndOwner(t *testing.T) {
	cls := NewClass("EdgeClass")
	m := NewClassMutex("we-m", cls)
	m.LockAt("owner-site")
	ownerGID := GoroutineID()
	done := make(chan struct{})
	go func() {
		m.LockAt("waiter-site")
		m.Unlock()
		close(done)
	}()
	es := waitForEdges(t, "we-m", 1)
	e := es[0]
	if e.Site != "waiter-site" {
		t.Fatalf("Site = %q, want waiter-site", e.Site)
	}
	if e.Class != "EdgeClass" {
		t.Fatalf("Class = %q", e.Class)
	}
	if e.OwnerSite != "owner-site" {
		t.Fatalf("OwnerSite = %q", e.OwnerSite)
	}
	if len(e.Owners) != 1 || e.Owners[0] != ownerGID {
		t.Fatalf("Owners = %v, want [%d]", e.Owners, ownerGID)
	}
	if e.Since.IsZero() {
		t.Fatal("Since not stamped")
	}
	if e.Mutex() != m {
		t.Fatal("edge lost the lock identity")
	}
	m.Unlock()
	<-done
	if len(edgesFor("we-m")) != 0 {
		t.Fatal("edge not cleared after acquisition")
	}
}

// Regression: RWMutex read-side waiters must register in the registry's
// waiting map like write-side ones, or the wait-for graph misses reader
// edges entirely.
func TestRWMutexReadWaiterRegisters(t *testing.T) {
	rw := NewRWMutex("we-rw-read")
	rw.Lock() // write-held: readers must queue
	writerGID := GoroutineID()
	done := make(chan struct{})
	go func() {
		rw.RLockAt("read-site")
		rw.RUnlock()
		close(done)
	}()
	es := waitForEdges(t, "we-rw-read", 1)
	e := es[0]
	if e.Site != "read-site" {
		t.Fatalf("Site = %q", e.Site)
	}
	if len(e.Owners) != 1 || e.Owners[0] != writerGID {
		t.Fatalf("Owners = %v, want writer %d", e.Owners, writerGID)
	}
	rw.Unlock()
	<-done
	if len(edgesFor("we-rw-read")) != 0 {
		t.Fatal("reader edge not cleared after acquisition")
	}
}

func TestRWMutexWriteWaiterSeesAllReaders(t *testing.T) {
	rw := NewRWMutex("we-rw-write")
	const readers = 3
	gids := make(chan uint64, readers)
	release := make(chan struct{})
	for i := 0; i < readers; i++ {
		go func() {
			rw.RLock()
			gids <- GoroutineID()
			<-release
			rw.RUnlock()
		}()
	}
	want := map[uint64]bool{}
	for i := 0; i < readers; i++ {
		want[<-gids] = true
	}
	done := make(chan struct{})
	go func() {
		rw.LockAt("write-site")
		rw.Unlock()
		close(done)
	}()
	es := waitForEdges(t, "we-rw-write", 1)
	e := es[0]
	if len(e.Owners) != readers {
		t.Fatalf("Owners = %v, want the %d readers", e.Owners, readers)
	}
	for _, g := range e.Owners {
		if !want[g] {
			t.Fatalf("owner %d is not one of the readers %v", g, want)
		}
	}
	close(release)
	<-done
	if len(edgesFor("we-rw-write")) != 0 {
		t.Fatal("writer edge not cleared after acquisition")
	}
}

func TestRWMutexWriteOwnerVisibleThroughShadow(t *testing.T) {
	rw := NewRWMutex("we-rw-owner")
	rw.LockAt("w-site")
	gid := GoroutineID()
	owner, site := rw.Shadow().Owner()
	if owner != gid || site != "w-site" {
		t.Fatalf("shadow owner = %d@%q, want %d@w-site", owner, site, gid)
	}
	rw.Unlock()
	if owner, _ := rw.Shadow().Owner(); owner != 0 {
		t.Fatalf("shadow owner = %d after unlock, want 0", owner)
	}
}
