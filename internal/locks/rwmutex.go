package locks

import (
	"fmt"
	"sync"
)

// RWMutex is a named reader-writer lock with the same held-set tracking
// and observability as Mutex. Reader holds are tracked per goroutine
// (several goroutines may hold the read side at once); the write side
// behaves like Mutex. Jigsaw-style servers guard configuration with
// reader-writer locks, and read-side holds participate in lock-order
// cycles just like mutexes, so the detectors need them instrumented too.
type RWMutex struct {
	mu    sync.RWMutex
	name  string
	class *Class

	ownMu     sync.Mutex
	writer    uint64 // gid holding the write side, 0 if none
	writeSite string
	readers   map[uint64]int // gid -> read-hold depth

	obsMu     sync.Mutex
	observers []Observer
}

// NewRWMutex returns a named reader-writer lock.
func NewRWMutex(name string) *RWMutex {
	return &RWMutex{name: name, readers: make(map[uint64]int)}
}

// NewClassRWMutex returns a named reader-writer lock tagged with a
// class.
func NewClassRWMutex(name string, class *Class) *RWMutex {
	rw := NewRWMutex(name)
	rw.class = class
	return rw
}

// Name returns the lock's name.
func (rw *RWMutex) Name() string { return rw.name }

// Class returns the lock's class, or nil.
func (rw *RWMutex) Class() *Class { return rw.class }

// Observe registers an observer; events carry the lock's shadow Mutex
// identity (see Shadow).
func (rw *RWMutex) Observe(o Observer) {
	rw.obsMu.Lock()
	rw.observers = append(rw.observers, o)
	rw.obsMu.Unlock()
}

func (rw *RWMutex) snapshot() []Observer {
	rw.obsMu.Lock()
	defer rw.obsMu.Unlock()
	if len(rw.observers) == 0 {
		return nil
	}
	out := make([]Observer, len(rw.observers))
	copy(out, rw.observers)
	return out
}

// shadow is the Mutex identity used in observer events and held-set
// entries for this RWMutex, so detectors treat both lock kinds
// uniformly. Created lazily, once.
var (
	shadowMu  sync.Mutex
	shadowMap = map[*RWMutex]*Mutex{}
)

// Shadow returns the Mutex identity representing this lock in held sets
// and observer events. The shadow's owner tracks the write side; its
// ownersFn widens ownership to the reader set while the lock is
// read-held, so wait-graph edges through an RWMutex point at every
// goroutine the blocked acquisition actually waits on.
func (rw *RWMutex) Shadow() *Mutex {
	shadowMu.Lock()
	defer shadowMu.Unlock()
	m, ok := shadowMap[rw]
	if !ok {
		m = &Mutex{name: rw.name, class: rw.class}
		m.ownersFn = rw.owners
		shadowMap[rw] = m
	}
	return m
}

// owners returns the goroutines holding either side of the lock: the
// writer if one exists, otherwise the current reader set.
func (rw *RWMutex) owners() []uint64 {
	rw.ownMu.Lock()
	defer rw.ownMu.Unlock()
	if rw.writer != 0 {
		return []uint64{rw.writer}
	}
	if len(rw.readers) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(rw.readers))
	for g := range rw.readers {
		out = append(out, g)
	}
	return out
}

// Lock acquires the write side.
func (rw *RWMutex) Lock() { rw.LockAt("") }

// LockAt is Lock with a source-site label.
func (rw *RWMutex) LockAt(site string) {
	gid := GoroutineID()
	sh := rw.Shadow()
	for _, o := range rw.snapshot() {
		o.BeforeLock(sh, gid, site)
	}
	reg.setWaiting(gid, sh, site)
	rw.mu.Lock()
	reg.setWaiting(gid, nil, "")
	rw.ownMu.Lock()
	rw.writer = gid
	rw.writeSite = site
	rw.ownMu.Unlock()
	sh.setOwner(gid, site)
	reg.push(gid, sh)
	for _, o := range rw.snapshot() {
		o.AfterLock(sh, gid, site)
	}
}

// Unlock releases the write side.
func (rw *RWMutex) Unlock() { rw.UnlockAt("") }

// UnlockAt is Unlock with a source-site label.
func (rw *RWMutex) UnlockAt(site string) {
	gid := GoroutineID()
	sh := rw.Shadow()
	for _, o := range rw.snapshot() {
		o.BeforeUnlock(sh, gid, site)
	}
	rw.ownMu.Lock()
	rw.writer = 0
	rw.writeSite = ""
	rw.ownMu.Unlock()
	sh.setOwner(0, "")
	reg.pop(gid, sh)
	rw.mu.Unlock()
}

// RLock acquires the read side.
func (rw *RWMutex) RLock() { rw.RLockAt("") }

// RLockAt is RLock with a source-site label.
func (rw *RWMutex) RLockAt(site string) {
	gid := GoroutineID()
	sh := rw.Shadow()
	for _, o := range rw.snapshot() {
		o.BeforeLock(sh, gid, site)
	}
	reg.setWaiting(gid, sh, site)
	rw.mu.RLock()
	reg.setWaiting(gid, nil, "")
	rw.ownMu.Lock()
	rw.readers[gid]++
	rw.ownMu.Unlock()
	reg.push(gid, sh)
	for _, o := range rw.snapshot() {
		o.AfterLock(sh, gid, site)
	}
}

// RUnlock releases the read side.
func (rw *RWMutex) RUnlock() { rw.RUnlockAt("") }

// RUnlockAt is RUnlock with a source-site label.
func (rw *RWMutex) RUnlockAt(site string) {
	gid := GoroutineID()
	sh := rw.Shadow()
	for _, o := range rw.snapshot() {
		o.BeforeUnlock(sh, gid, site)
	}
	rw.ownMu.Lock()
	if rw.readers[gid] > 1 {
		rw.readers[gid]--
	} else {
		delete(rw.readers, gid)
	}
	rw.ownMu.Unlock()
	reg.pop(gid, sh)
	rw.mu.RUnlock()
}

// WithRead runs f holding the read side.
func (rw *RWMutex) WithRead(f func()) {
	rw.RLock()
	defer rw.RUnlock()
	f()
}

// WithWrite runs f holding the write side.
func (rw *RWMutex) WithWrite(f func()) {
	rw.Lock()
	defer rw.Unlock()
	f()
}

// Writer returns the gid holding the write side (0 if none) and its
// acquisition site.
func (rw *RWMutex) Writer() (uint64, string) {
	rw.ownMu.Lock()
	defer rw.ownMu.Unlock()
	return rw.writer, rw.writeSite
}

// ReaderCount returns the number of goroutines holding the read side.
func (rw *RWMutex) ReaderCount() int {
	rw.ownMu.Lock()
	defer rw.ownMu.Unlock()
	return len(rw.readers)
}

// String implements fmt.Stringer.
func (rw *RWMutex) String() string {
	if rw.class != nil {
		return fmt.Sprintf("RWMutex(%s:%s)", rw.class.Name, rw.name)
	}
	return fmt.Sprintf("RWMutex(%s)", rw.name)
}
