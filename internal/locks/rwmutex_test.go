package locks

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRWMutexBasics(t *testing.T) {
	rw := NewRWMutex("rw")
	rw.Lock()
	if gid, _ := rw.Writer(); gid != GoroutineID() {
		t.Fatal("writer not recorded")
	}
	if !IsHeld(rw.Shadow()) {
		t.Fatal("write hold not in held set")
	}
	rw.Unlock()
	if gid, _ := rw.Writer(); gid != 0 {
		t.Fatal("writer not cleared")
	}
	if IsHeld(rw.Shadow()) {
		t.Fatal("held set not cleared")
	}
}

func TestRWMutexConcurrentReaders(t *testing.T) {
	rw := NewRWMutex("rw2")
	var inside atomic.Int32
	var peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rw.WithRead(func() {
				n := inside.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(5 * time.Millisecond)
				inside.Add(-1)
			})
		}()
	}
	wg.Wait()
	if peak.Load() < 2 {
		t.Fatalf("readers never overlapped (peak %d)", peak.Load())
	}
	if rw.ReaderCount() != 0 {
		t.Fatal("reader count not cleared")
	}
}

func TestRWMutexWriterExcludesReaders(t *testing.T) {
	rw := NewRWMutex("rw3")
	rw.Lock()
	got := make(chan struct{})
	go func() {
		rw.RLock()
		rw.RUnlock()
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("reader acquired while writer held")
	case <-time.After(20 * time.Millisecond):
	}
	rw.Unlock()
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("reader never acquired after writer released")
	}
}

func TestRWMutexReentrantRead(t *testing.T) {
	rw := NewRWMutex("rw4")
	rw.RLock()
	rw.RLock()
	if rw.ReaderCount() != 1 {
		t.Fatalf("reader count = %d, want 1 goroutine", rw.ReaderCount())
	}
	rw.RUnlock()
	if rw.ReaderCount() != 1 {
		t.Fatal("depth-1 unlock removed the goroutine")
	}
	rw.RUnlock()
	if rw.ReaderCount() != 0 {
		t.Fatal("reader not removed")
	}
}

func TestRWMutexObserverAndClass(t *testing.T) {
	c := NewClass("Config")
	rw := NewClassRWMutex("cfg", c)
	var r recordingObserver
	rw.Observe(&r)
	rw.WithWrite(func() {})
	rw.WithRead(func() {})
	if r.before.Load() != 2 || r.after.Load() != 2 || r.unlock.Load() != 2 {
		t.Fatalf("observer counts %d/%d/%d", r.before.Load(), r.after.Load(), r.unlock.Load())
	}
	rw.RLock()
	if !IsClassHeld(c) {
		t.Fatal("class not held via read side")
	}
	rw.RUnlock()
	if rw.Shadow() != rw.Shadow() {
		t.Fatal("shadow identity unstable")
	}
	if rw.String() != "RWMutex(Config:cfg)" {
		t.Fatalf("String = %q", rw.String())
	}
	if NewRWMutex("plain").String() != "RWMutex(plain)" {
		t.Fatal("plain String wrong")
	}
}
