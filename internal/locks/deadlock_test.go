package locks

import (
	"strings"
	"testing"
	"time"
)

func TestNoDeadlockOnHealthyLocking(t *testing.T) {
	// Other tests in this package deliberately leak deadlocked
	// goroutines into the global registry, so assert only that no cycle
	// involves THIS test's locks.
	involvesOurs := func() bool {
		for _, d := range FindDeadlocks() {
			for _, l := range d.Locks {
				if l == "ha" || l == "hb" {
					return true
				}
			}
		}
		return false
	}
	a, b := NewMutex("ha"), NewMutex("hb")
	a.Lock()
	b.Lock()
	if involvesOurs() {
		t.Fatal("healthy nesting reported as deadlock")
	}
	b.Unlock()
	a.Unlock()
	if involvesOurs() {
		t.Fatal("deadlock reported after release")
	}
}

func TestFindDeadlocksDetectsLiveCycle(t *testing.T) {
	a, b := NewMutex("dl-A"), NewMutex("dl-B")
	acquired := make(chan struct{}, 2)
	// Two goroutines cross-acquire and stay deadlocked (deliberately
	// leaked — that is the condition under test).
	go func() {
		a.Lock()
		acquired <- struct{}{}
		time.Sleep(20 * time.Millisecond)
		// Blocks forever.
		//cbvet:ignore lockorder intentional: this test constructs the deadlock the detector must report
		b.Lock()
	}()
	go func() {
		b.Lock()
		acquired <- struct{}{}
		time.Sleep(20 * time.Millisecond)
		// Blocks forever.
		//cbvet:ignore lockorder intentional: this test constructs the deadlock the detector must report
		a.Lock()
	}()
	<-acquired
	<-acquired

	deadline := time.Now().Add(5 * time.Second)
	for !Deadlocked() {
		if time.Now().After(deadline) {
			t.Fatal("live deadlock never detected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cycles := FindDeadlocks()
	if len(cycles) == 0 {
		t.Fatal("FindDeadlocks returned nothing")
	}
	c := cycles[0]
	if len(c.GIDs) != 2 || len(c.Locks) != 2 {
		t.Fatalf("cycle = %+v", c)
	}
	s := c.String()
	if !strings.Contains(s, "dl-A") || !strings.Contains(s, "dl-B") || !strings.Contains(s, "waits") {
		t.Fatalf("cycle string = %q", s)
	}
}

func TestWaitingClearedAfterAcquisition(t *testing.T) {
	m := NewMutex("wc")
	m.Lock()
	gidCh := make(chan uint64, 1)
	done := make(chan struct{})
	go func() {
		gidCh <- GoroutineID()
		m.Lock()
		m.Unlock()
		close(done)
	}()
	gid := <-gidCh
	// The registry is global and other tests deliberately leak
	// deadlocked goroutines, so assert only on this goroutine's entry.
	waitingOn := func() *Mutex {
		reg.mu.Lock()
		defer reg.mu.Unlock()
		return reg.waiting[gid].m
	}
	deadline := time.Now().Add(5 * time.Second)
	for waitingOn() != m {
		if time.Now().After(deadline) {
			t.Fatal("blocked goroutine not registered as waiting")
		}
		time.Sleep(time.Millisecond)
	}
	m.Unlock()
	<-done
	if waitingOn() != nil {
		t.Fatal("waiting entry not cleared after acquisition")
	}
}
