package locks

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLockUnlockHeldSet(t *testing.T) {
	m := NewMutex("a")
	if IsHeld(m) {
		t.Fatal("freshly created mutex reported held")
	}
	m.Lock()
	if !IsHeld(m) {
		t.Fatal("locked mutex not in held set")
	}
	if got := HeldNames(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("HeldNames = %v", got)
	}
	m.Unlock()
	if IsHeld(m) {
		t.Fatal("unlocked mutex still in held set")
	}
}

func TestNestedHeldOrder(t *testing.T) {
	a, b := NewMutex("a"), NewMutex("b")
	a.Lock()
	b.Lock()
	held := Held()
	if len(held) != 2 || held[0] != a || held[1] != b {
		t.Fatalf("Held = %v, want [a b] in acquisition order", held)
	}
	b.Unlock()
	a.Unlock()
	if len(Held()) != 0 {
		t.Fatal("held set not empty after unlocks")
	}
}

func TestHeldIsPerGoroutine(t *testing.T) {
	m := NewMutex("g")
	m.Lock()
	defer m.Unlock()
	ch := make(chan bool)
	go func() { ch <- IsHeld(m) }()
	if <-ch {
		t.Fatal("another goroutine sees the lock as held by itself")
	}
}

func TestMutualExclusion(t *testing.T) {
	m := NewMutex("mx")
	var counter int
	var wg sync.WaitGroup
	const goroutines, iters = 8, 1000
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

func TestTryLock(t *testing.T) {
	m := NewMutex("try")
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if !IsHeld(m) {
		t.Fatal("TryLock did not record held set")
	}
	ch := make(chan bool)
	go func() { ch <- m.TryLock() }()
	if <-ch {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock()
}

func TestWithRunsUnderLock(t *testing.T) {
	m := NewMutex("with")
	ran := false
	m.With(func() {
		ran = true
		if !IsHeld(m) {
			t.Error("With body does not hold the lock")
		}
	})
	if !ran {
		t.Fatal("With did not run the body")
	}
	if IsHeld(m) {
		t.Fatal("With leaked the lock")
	}
}

func TestClassHeld(t *testing.T) {
	caret := NewClass("BasicCaret")
	other := NewClass("Other")
	m := NewClassMutex("c1", caret)
	if IsClassHeld(caret) {
		t.Fatal("class held before lock")
	}
	m.Lock()
	if !IsClassHeld(caret) {
		t.Fatal("class not held while lock held")
	}
	if IsClassHeld(other) {
		t.Fatal("wrong class reported held")
	}
	pred := ClassHeldPred(caret)
	if !pred() {
		t.Fatal("ClassHeldPred false while held")
	}
	m.Unlock()
	if pred() {
		t.Fatal("ClassHeldPred true after unlock")
	}
	if m.Class() != caret {
		t.Fatal("Class() mismatch")
	}
}

type recordingObserver struct {
	before, after, unlock atomic.Int32
	lastSite              atomic.Value
}

func (r *recordingObserver) BeforeLock(m *Mutex, gid uint64, site string) {
	r.before.Add(1)
	r.lastSite.Store(site)
}
func (r *recordingObserver) AfterLock(m *Mutex, gid uint64, site string)    { r.after.Add(1) }
func (r *recordingObserver) BeforeUnlock(m *Mutex, gid uint64, site string) { r.unlock.Add(1) }

func TestObserverEvents(t *testing.T) {
	m := NewMutex("obs")
	var r recordingObserver
	m.Observe(&r)
	m.Lock()
	m.Unlock()
	m.With(func() {})
	if r.before.Load() != 2 || r.after.Load() != 2 || r.unlock.Load() != 2 {
		t.Fatalf("observer counts = %d/%d/%d, want 2/2/2",
			r.before.Load(), r.after.Load(), r.unlock.Load())
	}
	m.WithAt("file.go:10", func() {})
	if got := r.lastSite.Load().(string); got != "file.go:10" {
		t.Fatalf("site = %q, want file.go:10", got)
	}
}

func TestOwnerTracking(t *testing.T) {
	m := NewMutex("own")
	if gid, _ := m.Owner(); gid != 0 {
		t.Fatal("free mutex has an owner")
	}
	m.LockAt("here:1")
	gid, site := m.Owner()
	if gid != GoroutineID() || site != "here:1" {
		t.Fatalf("Owner = %d %q", gid, site)
	}
	m.Unlock()
	if gid, _ := m.Owner(); gid != 0 {
		t.Fatal("owner not cleared on unlock")
	}
}

func TestMutexString(t *testing.T) {
	if s := NewMutex("plain").String(); s != "Mutex(plain)" {
		t.Errorf("String = %q", s)
	}
	if s := NewClassMutex("m", NewClass("C")).String(); s != "Mutex(C:m)" {
		t.Errorf("String = %q", s)
	}
}

func TestGoroutineIDDistinct(t *testing.T) {
	mine := GoroutineID()
	if mine == 0 {
		t.Fatal("GoroutineID returned 0")
	}
	ch := make(chan uint64)
	go func() { ch <- GoroutineID() }()
	if other := <-ch; other == mine {
		t.Fatal("distinct goroutines share an id")
	}
}

func TestHeldByOtherGoroutine(t *testing.T) {
	m := NewMutex("hb")
	gidCh := make(chan uint64)
	release := make(chan struct{})
	go func() {
		m.Lock()
		gidCh <- GoroutineID()
		<-release
		m.Unlock()
		gidCh <- 0
	}()
	gid := <-gidCh
	held := HeldBy(gid)
	if len(held) != 1 || held[0] != m {
		t.Fatalf("HeldBy(%d) = %v, want [m]", gid, held)
	}
	close(release)
	<-gidCh
	if len(HeldBy(gid)) != 0 {
		t.Fatal("held set not cleared after goroutine unlocked")
	}
}

func TestCondNotifyWakesWaiter(t *testing.T) {
	m := NewMutex("cm")
	c := NewCond("cv", m)
	woke := make(chan struct{})
	go func() {
		m.Lock()
		c.Wait()
		m.Unlock()
		close(woke)
	}()
	// Wait for the waiter to register.
	for c.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	m.Lock()
	c.Notify()
	m.Unlock()
	select {
	case <-woke:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke")
	}
	if c.Delivered() != 1 || c.Missed() != 0 {
		t.Fatalf("delivered=%d missed=%d", c.Delivered(), c.Missed())
	}
}

func TestCondNotifyWithNoWaiterIsLost(t *testing.T) {
	m := NewMutex("cm2")
	c := NewCond("cv2", m)
	m.Lock()
	c.Notify()
	m.Unlock()
	if c.Missed() != 1 {
		t.Fatalf("Missed = %d, want 1 (lost notification)", c.Missed())
	}
	// A subsequent wait must NOT be satisfied by the lost notification.
	m.Lock()
	ok := c.WaitTimeout(20 * time.Millisecond)
	m.Unlock()
	if ok {
		t.Fatal("wait satisfied by a notification sent before waiting began")
	}
}

func TestCondWaitTimeoutReacquiresLock(t *testing.T) {
	m := NewMutex("cm3")
	c := NewCond("cv3", m)
	m.Lock()
	if c.WaitTimeout(10 * time.Millisecond) {
		t.Fatal("timeout wait reported success")
	}
	if !IsHeld(m) {
		t.Fatal("lock not re-acquired after timed-out wait")
	}
	m.Unlock()
	if c.Waiters() != 0 {
		t.Fatal("timed-out waiter left registered")
	}
}

func TestCondNotifyAll(t *testing.T) {
	m := NewMutex("cm4")
	c := NewCond("cv4", m)
	const n = 5
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Lock()
			c.Wait()
			m.Unlock()
		}()
	}
	for c.Waiters() < n {
		time.Sleep(time.Millisecond)
	}
	m.Lock()
	c.NotifyAll()
	m.Unlock()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("NotifyAll did not wake all waiters")
	}
	if c.Delivered() != n {
		t.Fatalf("Delivered = %d, want %d", c.Delivered(), n)
	}
}

func TestCondOneNotifyWakesExactlyOne(t *testing.T) {
	m := NewMutex("cm5")
	c := NewCond("cv5", m)
	var woke atomic.Int32
	for i := 0; i < 3; i++ {
		go func() {
			m.Lock()
			if c.WaitTimeout(300 * time.Millisecond) {
				woke.Add(1)
			}
			m.Unlock()
		}()
	}
	for c.Waiters() < 3 {
		time.Sleep(time.Millisecond)
	}
	m.Lock()
	c.Notify()
	m.Unlock()
	time.Sleep(400 * time.Millisecond)
	if woke.Load() != 1 {
		t.Fatalf("woke = %d, want exactly 1", woke.Load())
	}
}

func TestCondStressManyWaitersAndNotifiers(t *testing.T) {
	m := NewMutex("stress-mon")
	c := NewCond("stress-cv", m)
	const waiters = 16
	var woke atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Lock()
			if c.WaitTimeout(5 * time.Second) {
				woke.Add(1)
			}
			m.Unlock()
		}()
	}
	for c.Waiters() < waiters {
		time.Sleep(time.Millisecond)
	}
	// Wake them with a mixture of Notify and NotifyAll from concurrent
	// notifiers.
	var nwg sync.WaitGroup
	for i := 0; i < 4; i++ {
		nwg.Add(1)
		go func() {
			defer nwg.Done()
			for j := 0; j < waiters/4; j++ {
				m.Lock()
				c.Notify()
				m.Unlock()
			}
		}()
	}
	nwg.Wait()
	// Whatever was left gets a broadcast.
	m.Lock()
	c.NotifyAll()
	m.Unlock()
	wg.Wait()
	if woke.Load() != waiters {
		t.Fatalf("woke %d/%d waiters", woke.Load(), waiters)
	}
	if c.Delivered() < waiters {
		t.Fatalf("delivered = %d", c.Delivered())
	}
}

func TestHeldNamesSortedProperty(t *testing.T) {
	names := []string{"zeta", "alpha", "mid"}
	var ms []*Mutex
	for _, n := range names {
		m := NewMutex(n)
		m.Lock()
		ms = append(ms, m)
	}
	got := HeldNames()
	if !sort.StringsAreSorted(got) {
		t.Fatalf("HeldNames not sorted: %v", got)
	}
	for i := len(ms) - 1; i >= 0; i-- {
		ms[i].Unlock()
	}
}
