package core

// This file provides the breakpoint classes of section 4 of the paper:
// ConflictTrigger (data races and other same-object conflicts),
// DeadlockTrigger (lock-order deadlocks), AtomicityTrigger (atomicity
// violations), NotifyTrigger (missed notifications on a condition
// object), and the fully generic PredTrigger.

// ConflictTrigger represents one side of a breakpoint of the form
// (l1, l2, t1.obj == t2.obj): two threads about to touch the same object
// (typically a data race, where at least one access is a write). It is
// the Go analog of the paper's ConflictTrigger class (Figure 6).
type ConflictTrigger struct {
	name string
	// Obj is the object this side is about to access. Objects are
	// compared by interface identity, so pass pointers.
	Obj any
}

// NewConflictTrigger returns a conflict trigger for the named breakpoint
// guarding an access to obj.
func NewConflictTrigger(name string, obj any) *ConflictTrigger {
	return &ConflictTrigger{name: name, Obj: obj}
}

// Name implements Trigger.
func (c *ConflictTrigger) Name() string { return c.name }

// PredicateLocal implements Trigger; a plain conflict has no local
// condition beyond reaching the location.
func (c *ConflictTrigger) PredicateLocal() bool { return true }

// PredicateGlobal implements Trigger: both sides must reference the same
// object.
func (c *ConflictTrigger) PredicateGlobal(other Trigger) bool {
	o, ok := other.(*ConflictTrigger)
	return ok && o.name == c.name && o.Obj == c.Obj
}

// DeadlockTrigger represents one side of a deadlock breakpoint: the
// thread holds Held and is about to acquire Want. The joint predicate is
// the classic cycle condition t1.held == t2.want && t1.want == t2.held
// (Figure 8 of the paper, where lok1 is the held lock and lok2 the one
// about to be acquired).
type DeadlockTrigger struct {
	name string
	// Held is the lock this side already holds.
	Held any
	// Want is the lock this side is about to acquire.
	Want any
}

// NewDeadlockTrigger returns a deadlock trigger for the named breakpoint,
// for a thread holding held and about to acquire want.
func NewDeadlockTrigger(name string, held, want any) *DeadlockTrigger {
	return &DeadlockTrigger{name: name, Held: held, Want: want}
}

// Name implements Trigger.
func (d *DeadlockTrigger) Name() string { return d.name }

// PredicateLocal implements Trigger.
func (d *DeadlockTrigger) PredicateLocal() bool { return true }

// PredicateGlobal implements Trigger: the two sides' held/want pairs must
// cross, which is exactly a two-lock deadlock state.
func (d *DeadlockTrigger) PredicateGlobal(other Trigger) bool {
	o, ok := other.(*DeadlockTrigger)
	return ok && o.name == d.name && d.Held == o.Want && d.Want == o.Held
}

// AtomicityTrigger represents one side of an atomicity-violation
// breakpoint: one thread is inside a block that should be atomic over
// object Obj while the other is about to interleave an operation on the
// same object (the StringBuffer example of Figure 3, where t1.sb ==
// t2.this).
type AtomicityTrigger struct {
	name string
	// Obj is the object whose atomic block is being violated.
	Obj any
}

// NewAtomicityTrigger returns an atomicity trigger for the named
// breakpoint over obj.
func NewAtomicityTrigger(name string, obj any) *AtomicityTrigger {
	return &AtomicityTrigger{name: name, Obj: obj}
}

// Name implements Trigger.
func (a *AtomicityTrigger) Name() string { return a.name }

// PredicateLocal implements Trigger.
func (a *AtomicityTrigger) PredicateLocal() bool { return true }

// PredicateGlobal implements Trigger.
func (a *AtomicityTrigger) PredicateGlobal(other Trigger) bool {
	o, ok := other.(*AtomicityTrigger)
	return ok && o.name == a.name && o.Obj == a.Obj
}

// NotifyTrigger represents one side of a missed-notification breakpoint:
// one thread is about to notify a condition object while another is about
// to (but has not yet begun to) wait on it. Ordering the notify before
// the wait makes the notification miss, reproducing lost-wakeup stalls
// (the log4j/pool/jigsaw bugs of the paper's evaluation).
type NotifyTrigger struct {
	name string
	// Cond is the condition/monitor object being notified or awaited.
	Cond any
}

// NewNotifyTrigger returns a missed-notification trigger for the named
// breakpoint over the condition object cond.
func NewNotifyTrigger(name string, cond any) *NotifyTrigger {
	return &NotifyTrigger{name: name, Cond: cond}
}

// Name implements Trigger.
func (n *NotifyTrigger) Name() string { return n.name }

// PredicateLocal implements Trigger.
func (n *NotifyTrigger) PredicateLocal() bool { return true }

// PredicateGlobal implements Trigger.
func (n *NotifyTrigger) PredicateGlobal(other Trigger) bool {
	o, ok := other.(*NotifyTrigger)
	return ok && o.name == n.name && o.Cond == n.Cond
}

// PredTrigger is a fully generic breakpoint side built from closures. It
// subsumes the other trigger classes and supports arbitrary phi_ti and
// phi_t1t2 predicates over captured local state.
type PredTrigger struct {
	name string
	// State carries arbitrary local state for the Global predicate of
	// the partner side to inspect.
	State any
	// Local is phi_ti; nil means true.
	Local func() bool
	// Global is phi_t1t2, evaluated against the partner; nil means the
	// partner only has to share the breakpoint name.
	Global func(other *PredTrigger) bool
}

// NewPredTrigger returns a generic trigger with the given local state and
// predicates.
func NewPredTrigger(name string, state any, local func() bool, global func(other *PredTrigger) bool) *PredTrigger {
	return &PredTrigger{name: name, State: state, Local: local, Global: global}
}

// Name implements Trigger.
func (p *PredTrigger) Name() string { return p.name }

// PredicateLocal implements Trigger.
func (p *PredTrigger) PredicateLocal() bool { return p.Local == nil || p.Local() }

// PredicateGlobal implements Trigger.
func (p *PredTrigger) PredicateGlobal(other Trigger) bool {
	o, ok := other.(*PredTrigger)
	if !ok || o.name != p.name {
		return false
	}
	return p.Global == nil || p.Global(o)
}
