package core

import (
	"time"

	"cbreak/internal/guard"
)

// This file implements the paper's section 2 generalization: concurrent
// breakpoints over more than two threads. A breakpoint of arity n is a
// tuple (l1, ..., ln, phi); it is reached when n distinct goroutines sit
// at their slots with phi satisfied, and the action releases them in
// slot order (slot 0's next instruction first, then slot 1's, ...).
//
// The joint predicate phi is evaluated pairwise: a group matches when
// PredicateGlobal holds between every pair of participants, which for
// the built-in trigger classes coincides with the natural group
// predicate (e.g. all sides referencing the same object).

// mwaiter is one postponed participant of a multi-way breakpoint.
type mwaiter struct {
	t        Trigger
	slot     int
	arity    int
	gid      uint64
	seq      uint64
	ch       chan mmatch
	cancelCh chan struct{}
	state    int // guarded by engine mu
	action   func()

	// deadline/cancelOutcome mirror the waiter fields (engine.go): the
	// watchdog budget and the outcome a cancelled waiter reports.
	deadline      time.Time
	cancelOutcome Outcome
}

// mmatch tells a matched participant its release chain position.
type mmatch struct {
	prev chan struct{} // closed when the previous slot has proceeded
	self chan struct{} // this participant closes it after its action
}

// TriggerHereMulti announces that the calling goroutine reached slot
// `slot` of the n-way breakpoint t (slots are 0-based; slot order is the
// release order). It returns true when the full group rendezvoused.
func (e *Engine) TriggerHereMulti(t Trigger, slot, arity int, opts Options) bool {
	return e.triggerMulti(t, slot, arity, opts, nil) == OutcomeHit
}

// TriggerHereMultiAnd is TriggerHereMulti with the slot's guarded next
// instruction supplied as action: on a hit, actions run strictly in slot
// order; on a miss, action runs before the call returns.
func (e *Engine) TriggerHereMultiAnd(t Trigger, slot, arity int, opts Options, action func()) bool {
	return e.triggerMulti(t, slot, arity, opts, action) == OutcomeHit
}

func (e *Engine) triggerMulti(t Trigger, slot, arity int, opts Options, action func()) Outcome {
	if arity < 2 || slot < 0 || slot >= arity {
		if action != nil {
			action()
		}
		return OutcomeLocalFalse
	}
	if !e.enabled.Load() {
		if action != nil {
			action()
		}
		return OutcomeDisabled
	}
	name := t.Name()
	st, br := e.statsAndBreaker(name)
	st.arrived(slot == 0)
	fault := e.faultFor(name, slot == 0)

	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = e.DefaultTimeout
	}

	if br != nil {
		admit, tr := br.Allow(time.Now())
		e.noteBreakerTransition(name, st, br, tr)
		if !admit {
			st.shed(slot == 0)
			if e.execAction(name, 0, st, fault, 0, action) {
				return OutcomePanic
			}
			return OutcomeShed
		}
	}

	ok, pv, panicked := e.evalLocal(t, slot == 0, opts, st, fault)
	if panicked {
		return e.absorbPredPanic(name, "local", 0, st, fault, pv, action)
	}
	if !ok || fault.Drop {
		st.localFalse(slot == 0)
		if e.execAction(name, 0, st, fault, 0, action) {
			return OutcomePanic
		}
		return OutcomeLocalFalse
	}
	gid := goroutineID()
	e.logEvent(EventArrived, name, gid, slot == 0)

	e.mu.Lock()
	group, poisoned, gpv := e.findGroup(name, t, slot, arity, gid, fault)
	if poisoned != nil {
		e.releaseMultiWaiterLocked(name, poisoned, OutcomePanic)
		e.mu.Unlock()
		return e.absorbPredPanic(name, "global", gid, st, fault, gpv, action)
	}
	if group != nil {
		st.hit()
		e.logEvent(EventHit, name, gid, slot == 0)
		e.emitHit(name, t, group[0].t)
		// Build the release chain: chain[i] is closed when slot i may
		// proceed; chain[0] starts closed.
		chain := make([]chan struct{}, arity+1)
		for i := range chain {
			chain[i] = make(chan struct{})
		}
		close(chain[0])
		for _, w := range group {
			w.state = waiterMatched
			e.removeMultiWaiter(name, w)
			w.ch <- mmatch{prev: chain[w.slot], self: chain[w.slot+1]}
		}
		e.mu.Unlock()
		e.reportBreaker(br, name, st, true)
		return e.runChainStage(name, gid, st, fault, chain[slot], chain[slot+1], action, timeout)
	}

	// Postpone.
	e.seq++
	w := &mwaiter{t: t, slot: slot, arity: arity, gid: gid, seq: e.seq,
		ch: make(chan mmatch, 1), cancelCh: make(chan struct{}), action: action,
		deadline: time.Now().Add(timeout)}
	e.multi[name] = append(e.multi[name], w)
	st.postpone(slot == 0)
	e.mu.Unlock()

	selectTimeout := timeout
	if fault.WedgeWait {
		selectTimeout = wedgedTimeout
	}
	timer := time.NewTimer(selectTimeout)
	defer timer.Stop()
	start := time.Now()
	select {
	case mm := <-w.ch:
		st.addWait(time.Since(start))
		e.reportBreaker(br, name, st, true)
		return e.runChainStage(name, gid, st, fault, mm.prev, mm.self, action, timeout)
	case <-w.cancelCh:
		st.addWait(time.Since(start))
		out := e.cancelOutcomeOf(func() Outcome { return w.cancelOutcome })
		if out == OutcomeTimeout {
			e.reportBreaker(br, name, st, false)
		}
		if e.execAction(name, gid, st, fault, timeout, action) {
			return OutcomePanic
		}
		return out
	case <-timer.C:
		e.mu.Lock()
		if w.state == waiterMatched {
			e.mu.Unlock()
			mm := <-w.ch
			st.addWait(time.Since(start))
			e.reportBreaker(br, name, st, true)
			return e.runChainStage(name, gid, st, fault, mm.prev, mm.self, action, timeout)
		}
		e.removeMultiWaiter(name, w)
		w.state = waiterCancelled
		e.mu.Unlock()
		st.addWait(time.Since(start))
		st.timeout(slot == 0)
		e.logEvent(EventTimeout, name, gid, slot == 0)
		e.reportBreaker(br, name, st, false)
		if e.execAction(name, gid, st, fault, timeout, action) {
			return OutcomePanic
		}
		return OutcomeTimeout
	}
}

// runChainStage waits for the previous slot, runs this slot's action,
// and releases the next slot. Without an action the release happens
// immediately and the ordering window gives the earlier slots' next
// instructions time to run first. The release is deferred so a
// panicking or stalling action cannot wedge the rest of the chain.
func (e *Engine) runChainStage(name string, gid uint64, st *BPStats, fault guard.Fault, prev, self chan struct{}, action func(), timeout time.Duration) Outcome {
	select {
	case <-prev:
	case <-time.After(timeout):
		// Defensive: an earlier stage stalled; proceed anyway.
	}
	defer close(self)
	if action != nil || !fault.Zero() {
		if e.execAction(name, gid, st, fault, timeout, action) {
			return OutcomePanic
		}
		if action != nil {
			return OutcomeHit
		}
	}
	if e.OrderWindow > 0 {
		// Plain call sites: yield briefly so earlier slots' next
		// instructions win the race against this goroutine's.
		deadline := time.Now().Add(e.OrderWindow)
		for time.Now().Before(deadline) {
			yield()
		}
	}
	return OutcomeHit
}

// findGroup searches the postponed multi-waiters for a full group
// complement: one participant per slot other than `slot`, all with
// distinct goroutines and pairwise-satisfied joint predicates (including
// against the arriving trigger). It returns nil if no complete group
// exists. Slots are filled by backtracking over the (small) candidate
// lists, preferring older waiters. Joint predicates run isolated, like
// findPartner's: on a panic the search aborts and the waiter whose
// pairing panicked is returned as poisoned with the panic value.
func (e *Engine) findGroup(name string, t Trigger, slot, arity int, gid uint64, fault guard.Fault) (group []*mwaiter, poisoned *mwaiter, pv any) {
	pair := func(a, b Trigger) (bool, any, bool) {
		return protectBool(func() bool {
			if fault.PanicGlobal {
				panic(guard.InjectedPanic{Breakpoint: name, Site: "global"})
			}
			return a.PredicateGlobal(b)
		})
	}
	// Candidates per missing slot.
	cands := make(map[int][]*mwaiter)
	for _, w := range e.multi[name] {
		if w.state != waiterWaiting || w.arity != arity || w.slot == slot || w.gid == gid {
			continue
		}
		fwd, p, panicked := pair(t, w.t)
		if panicked {
			return nil, w, p
		}
		var rev bool
		if fwd {
			rev, p, panicked = pair(w.t, t)
			if panicked {
				return nil, w, p
			}
		}
		if !fwd || !rev {
			continue
		}
		cands[w.slot] = append(cands[w.slot], w)
	}
	need := make([]int, 0, arity-1)
	for s := 0; s < arity; s++ {
		if s == slot {
			continue
		}
		if len(cands[s]) == 0 {
			return nil, nil, nil
		}
		need = append(need, s)
	}
	chosen := make([]*mwaiter, 0, arity-1)
	var pick func(i int) bool
	pick = func(i int) bool {
		if i == len(need) {
			return true
		}
		for _, w := range cands[need[i]] {
			if poisoned != nil {
				return false
			}
			ok := true
			for _, c := range chosen {
				if c.gid == w.gid {
					ok = false
					break
				}
				fwd, p, panicked := pair(c.t, w.t)
				if panicked {
					poisoned, pv = w, p
					return false
				}
				var rev bool
				if fwd {
					rev, p, panicked = pair(w.t, c.t)
					if panicked {
						poisoned, pv = w, p
						return false
					}
				}
				if !fwd || !rev {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			chosen = append(chosen, w)
			if pick(i + 1) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
		}
		return false
	}
	if !pick(0) {
		if poisoned != nil {
			return nil, poisoned, pv
		}
		return nil, nil, nil
	}
	return chosen, nil, nil
}

func (e *Engine) removeMultiWaiter(name string, w *mwaiter) {
	ws := e.multi[name]
	for i, x := range ws {
		if x == w {
			ws[i] = ws[len(ws)-1]
			e.multi[name] = ws[:len(ws)-1]
			return
		}
	}
}

// MultiPostponedCount returns the number of goroutines postponed on the
// named multi-way breakpoint.
func (e *Engine) MultiPostponedCount(name string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.multi[name])
}
