package core

import (
	"time"

	"cbreak/internal/guard"
)

// This file implements the paper's section 2 generalization: concurrent
// breakpoints over more than two threads. A breakpoint of arity n is a
// tuple (l1, ..., ln, phi); it is reached when n distinct goroutines sit
// at their slots with phi satisfied, and the action releases them in
// slot order (slot 0's next instruction first, then slot 1's, ...).
//
// The joint predicate phi is evaluated pairwise: a group matches when
// PredicateGlobal holds between every pair of participants, which for
// the built-in trigger classes coincides with the natural group
// predicate (e.g. all sides referencing the same object).

// mwaiter is one postponed participant of a multi-way breakpoint.
type mwaiter struct {
	t        Trigger
	slot     int
	arity    int
	gid      uint64
	seq      uint64
	ch       chan mmatch
	cancelCh chan struct{}
	state    int // guarded by engine mu
	action   func()

	// deadline/cancelOutcome mirror the waiter fields (engine.go): the
	// watchdog budget and the outcome a cancelled waiter reports
	// (published by the close of cancelCh).
	deadline      time.Time
	cancelOutcome Outcome
}

// mmatch tells a matched participant its release chain position.
type mmatch struct {
	prev chan struct{} // closed when the previous slot has proceeded
	self chan struct{} // this participant closes it after its action
}

// TriggerHereMulti announces that the calling goroutine reached slot
// `slot` of the n-way breakpoint t (slots are 0-based; slot order is the
// release order). It returns true when the full group rendezvoused.
func (e *Engine) TriggerHereMulti(t Trigger, slot, arity int, opts Options) bool {
	if !e.enabled.Load() {
		return false
	}
	return e.triggerMulti(e.shard(t.Name()), t, slot, arity, opts, nil) == OutcomeHit
}

// TriggerHereMultiAnd is TriggerHereMulti with the slot's guarded next
// instruction supplied as action: on a hit, actions run strictly in slot
// order; on a miss, action runs before the call returns.
func (e *Engine) TriggerHereMultiAnd(t Trigger, slot, arity int, opts Options, action func()) bool {
	if !e.enabled.Load() {
		if action != nil {
			action()
		}
		return false
	}
	return e.triggerMulti(e.shard(t.Name()), t, slot, arity, opts, action) == OutcomeHit
}

// triggerMulti is the N-way arrival path; like trigger (engine.go) it
// operates on the breakpoint's shard, resolved by the caller.
func (e *Engine) triggerMulti(s *bpState, t Trigger, slot, arity int, opts Options, action func()) Outcome {
	if arity < 2 || slot < 0 || slot >= arity {
		if action != nil {
			action()
		}
		return OutcomeLocalFalse
	}
	if !e.enabled.Load() || s.disabled.Load() {
		if action != nil {
			action()
		}
		return OutcomeDisabled
	}
	name := s.name
	st := s.stats
	br := s.breakerFor(e)
	st.arrived(slot == 0)
	fault := e.faultFor(name, slot == 0)

	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = e.DefaultTimeout
	}

	if br != nil {
		admit, tr := br.Allow(time.Now())
		e.noteBreakerTransition(name, st, br, tr)
		if !admit {
			st.shed(slot == 0)
			if e.execAction(name, 0, st, fault, 0, action) {
				return OutcomePanic
			}
			return OutcomeShed
		}
	}

	ok, pv, panicked := e.evalLocal(t, slot == 0, opts, st, fault)
	if panicked {
		return e.absorbPredPanic(name, "local", 0, st, fault, pv, action)
	}
	if !ok || fault.Drop {
		st.localFalse(slot == 0)
		if e.execAction(name, 0, st, fault, 0, action) {
			return OutcomePanic
		}
		return OutcomeLocalFalse
	}
	gid := goroutineID()
	e.logEvent(s, EventArrived, gid, slot == 0)

	s = e.lockLive(s)
	st = s.stats
	group, poisoned, gpv := s.findGroup(t, slot, arity, gid, fault)
	if poisoned != nil {
		s.releaseMultiWaiterLocked(poisoned, OutcomePanic)
		s.mu.Unlock()
		return e.absorbPredPanic(name, "global", gid, st, fault, gpv, action)
	}
	if group != nil {
		st.hit()
		e.logEvent(s, EventHit, gid, slot == 0)
		e.emitHit(name, t, group[0].t)
		// Build the release chain: chain[i] is closed when slot i may
		// proceed; chain[0] starts closed.
		chain := make([]chan struct{}, arity+1)
		for i := range chain {
			chain[i] = make(chan struct{})
		}
		close(chain[0])
		for _, w := range group {
			w.state = waiterMatched
			s.removeMultiWaiter(w)
			w.ch <- mmatch{prev: chain[w.slot], self: chain[w.slot+1]}
		}
		s.mu.Unlock()
		e.reportBreaker(br, name, st, true)
		return e.runChainStage(name, gid, st, fault, chain[slot], chain[slot+1], action, timeout)
	}

	// Postpone — subject to the same overload bounds and adaptive
	// budget as the two-way path (engine.go).
	ov := s.overloadFor(e)
	global := e.postponedTotal.Load()
	if reason, shed := ov.shedReason(len(s.postponed)+len(s.multi), global); shed {
		s.mu.Unlock()
		st.shed(slot == 0)
		e.recordIncident(guard.KindOverloadShed, name, gid, reason)
		if e.execAction(name, gid, st, fault, 0, action) {
			return OutcomePanic
		}
		return OutcomeShed
	}
	budget := ov.budget(timeout, global)
	w := &mwaiter{t: t, slot: slot, arity: arity, gid: gid, seq: e.seq.Add(1),
		ch: make(chan mmatch, 1), cancelCh: make(chan struct{}), action: action,
		deadline: time.Now().Add(budget)}
	s.multi = append(s.multi, w)
	e.postponedTotal.Add(1)
	st.postpone(slot == 0)
	s.mu.Unlock()

	selectTimeout := budget
	if fault.WedgeWait {
		selectTimeout = wedgedTimeout
	}
	timer := time.NewTimer(selectTimeout)
	defer timer.Stop()
	start := time.Now()
	select {
	case mm := <-w.ch:
		st.addWait(time.Since(start))
		e.reportBreaker(br, name, st, true)
		return e.runChainStage(name, gid, st, fault, mm.prev, mm.self, action, timeout)
	case <-w.cancelCh:
		st.addWait(time.Since(start))
		out := w.cancelOutcome
		if out == OutcomeDisabled { // never set: defensive default
			out = OutcomeTimeout
		}
		if out == OutcomeTimeout {
			e.reportBreaker(br, name, st, false)
		}
		if e.execAction(name, gid, st, fault, timeout, action) {
			return OutcomePanic
		}
		return out
	case <-timer.C:
		s.mu.Lock()
		if w.state == waiterMatched {
			s.mu.Unlock()
			mm := <-w.ch
			st.addWait(time.Since(start))
			e.reportBreaker(br, name, st, true)
			return e.runChainStage(name, gid, st, fault, mm.prev, mm.self, action, timeout)
		}
		s.removeMultiWaiter(w)
		w.state = waiterCancelled
		s.mu.Unlock()
		st.addWait(time.Since(start))
		st.timeout(slot == 0)
		e.logEvent(s, EventTimeout, gid, slot == 0)
		e.reportBreaker(br, name, st, false)
		if e.execAction(name, gid, st, fault, timeout, action) {
			return OutcomePanic
		}
		return OutcomeTimeout
	}
}

// runChainStage waits for the previous slot, runs this slot's action,
// and releases the next slot. Without an action the release happens
// immediately and the ordering window gives the earlier slots' next
// instructions time to run first. The release is deferred so a
// panicking or stalling action cannot wedge the rest of the chain.
func (e *Engine) runChainStage(name string, gid uint64, st *BPStats, fault guard.Fault, prev, self chan struct{}, action func(), timeout time.Duration) Outcome {
	select {
	case <-prev:
		// Previous slot already proceeded; skip the timer entirely (the
		// common case for slot 0 and tight chains).
	default:
		timer := time.NewTimer(timeout)
		select {
		case <-prev:
		case <-timer.C:
			// Defensive: an earlier stage stalled; proceed anyway.
		}
		timer.Stop()
	}
	defer close(self)
	if action != nil || !fault.Zero() {
		if e.execAction(name, gid, st, fault, timeout, action) {
			return OutcomePanic
		}
		if action != nil {
			return OutcomeHit
		}
	}
	if e.OrderWindow > 0 {
		// Plain call sites: yield briefly so earlier slots' next
		// instructions win the race against this goroutine's.
		deadline := time.Now().Add(e.OrderWindow)
		for time.Now().Before(deadline) {
			yield()
		}
	}
	return OutcomeHit
}

// findGroup searches the postponed multi-waiters for a full group
// complement: one participant per slot other than `slot`, all with
// distinct goroutines and pairwise-satisfied joint predicates (including
// against the arriving trigger). It returns nil if no complete group
// exists. Slots are filled by backtracking over the (small) candidate
// lists, preferring older waiters. Joint predicates run isolated, like
// findPartner's: on a panic the search aborts and the waiter whose
// pairing panicked is returned as poisoned with the panic value. Caller
// holds s.mu.
func (s *bpState) findGroup(t Trigger, slot, arity int, gid uint64, fault guard.Fault) (group []*mwaiter, poisoned *mwaiter, pv any) {
	pair := func(a, b Trigger) (bool, any, bool) {
		return protectBool(func() bool {
			if fault.PanicGlobal {
				panic(guard.InjectedPanic{Breakpoint: s.name, Site: "global"})
			}
			return a.PredicateGlobal(b)
		})
	}
	// Candidates per missing slot.
	cands := make(map[int][]*mwaiter)
	for _, w := range s.multi {
		if w.state != waiterWaiting || w.arity != arity || w.slot == slot || w.gid == gid {
			continue
		}
		fwd, p, panicked := pair(t, w.t)
		if panicked {
			return nil, w, p
		}
		var rev bool
		if fwd {
			rev, p, panicked = pair(w.t, t)
			if panicked {
				return nil, w, p
			}
		}
		if !fwd || !rev {
			continue
		}
		cands[w.slot] = append(cands[w.slot], w)
	}
	need := make([]int, 0, arity-1)
	for s := 0; s < arity; s++ {
		if s == slot {
			continue
		}
		if len(cands[s]) == 0 {
			return nil, nil, nil
		}
		need = append(need, s)
	}
	chosen := make([]*mwaiter, 0, arity-1)
	var pick func(i int) bool
	pick = func(i int) bool {
		if i == len(need) {
			return true
		}
		for _, w := range cands[need[i]] {
			if poisoned != nil {
				return false
			}
			ok := true
			for _, c := range chosen {
				if c.gid == w.gid {
					ok = false
					break
				}
				fwd, p, panicked := pair(c.t, w.t)
				if panicked {
					poisoned, pv = w, p
					return false
				}
				var rev bool
				if fwd {
					rev, p, panicked = pair(w.t, c.t)
					if panicked {
						poisoned, pv = w, p
						return false
					}
				}
				if !fwd || !rev {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			chosen = append(chosen, w)
			if pick(i + 1) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
		}
		return false
	}
	if !pick(0) {
		if poisoned != nil {
			return nil, poisoned, pv
		}
		return nil, nil, nil
	}
	return chosen, nil, nil
}

// MultiPostponedCount returns the number of goroutines postponed on the
// named multi-way breakpoint.
func (e *Engine) MultiPostponedCount(name string) int {
	s, ok := e.lookupShard(name)
	if !ok {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.multi)
}
