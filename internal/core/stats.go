package core

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"cbreak/internal/telemetry"
)

// BPStats accumulates per-breakpoint counters. All fields are updated
// atomically; a BPStats value is shared by every Trigger instance with
// the same name on one engine.
type BPStats struct {
	name string

	arrivals      [2]atomic.Int64 // by side: [0]=second-action, [1]=first-action
	localFalses   [2]atomic.Int64
	postpones     [2]atomic.Int64
	timeouts      [2]atomic.Int64
	hits          atomic.Int64
	waitNanos     atomic.Int64 // total time spent postponed
	maxWaitNanos  atomic.Int64
	lastHitUnixNs atomic.Int64

	// waitHist buckets individual postponement waits by duration against
	// telemetry.WaitBuckets (upper bounds in seconds; waits above the
	// last bound land only in waitObs). Atomic per-bucket counts, so the
	// histogram costs one extra atomic add per postponement — nothing on
	// the disabled or local-false paths.
	waitHist [telemetry.NumWaitBuckets]atomic.Int64
	waitObs  atomic.Int64 // total observations (addWait calls)

	// Hardening counters (hardening.go): absorbed user-closure panics,
	// arrivals shed by an open circuit breaker, breaker trips and
	// re-arms.
	panics atomic.Int64
	sheds  [2]atomic.Int64
	trips  atomic.Int64
	rearms atomic.Int64
}

func sideIndex(first bool) int {
	if first {
		return 1
	}
	return 0
}

func (s *BPStats) arrived(first bool)    { s.arrivals[sideIndex(first)].Add(1) }
func (s *BPStats) localFalse(first bool) { s.localFalses[sideIndex(first)].Add(1) }
func (s *BPStats) postpone(first bool)   { s.postpones[sideIndex(first)].Add(1) }
func (s *BPStats) timeout(first bool)    { s.timeouts[sideIndex(first)].Add(1) }
func (s *BPStats) hit() {
	s.hits.Add(1)
	s.lastHitUnixNs.Store(time.Now().UnixNano())
}

func (s *BPStats) addWait(d time.Duration) {
	n := int64(d)
	s.waitNanos.Add(n)
	s.waitObs.Add(1)
	secs := d.Seconds()
	for i, bound := range telemetry.WaitBuckets {
		if secs <= bound {
			s.waitHist[i].Add(1)
			break
		}
	}
	for {
		cur := s.maxWaitNanos.Load()
		if n <= cur || s.maxWaitNanos.CompareAndSwap(cur, n) {
			return
		}
	}
}

func (s *BPStats) panicked()       { s.panics.Add(1) }
func (s *BPStats) shed(first bool) { s.sheds[sideIndex(first)].Add(1) }
func (s *BPStats) trip()           { s.trips.Add(1) }
func (s *BPStats) rearm()          { s.rearms.Add(1) }

func (s *BPStats) sideArrivals(first bool) int64 { return s.arrivals[sideIndex(first)].Load() }

// Name returns the breakpoint name these statistics belong to.
func (s *BPStats) Name() string { return s.name }

// Hits returns how many times the breakpoint has been hit.
func (s *BPStats) Hits() int64 { return s.hits.Load() }

// Arrivals returns the total number of TriggerHere calls on both sides.
func (s *BPStats) Arrivals() int64 { return s.arrivals[0].Load() + s.arrivals[1].Load() }

// Timeouts returns how many postponements expired without a partner.
func (s *BPStats) Timeouts() int64 { return s.timeouts[0].Load() + s.timeouts[1].Load() }

// Postpones returns how many arrivals were postponed.
func (s *BPStats) Postpones() int64 { return s.postpones[0].Load() + s.postpones[1].Load() }

// LocalFalses returns how many arrivals failed the local predicate.
func (s *BPStats) LocalFalses() int64 { return s.localFalses[0].Load() + s.localFalses[1].Load() }

// TotalWait returns the cumulative time goroutines spent postponed on
// this breakpoint; this is the breakpoint's contribution to runtime
// overhead (section 6.2 of the paper).
func (s *BPStats) TotalWait() time.Duration { return time.Duration(s.waitNanos.Load()) }

// MaxWait returns the longest single postponement.
func (s *BPStats) MaxWait() time.Duration { return time.Duration(s.maxWaitNanos.Load()) }

// Panics returns how many user-closure panics the hardening layer
// absorbed at this breakpoint.
func (s *BPStats) Panics() int64 { return s.panics.Load() }

// Sheds returns how many arrivals an open circuit breaker passed
// straight through.
func (s *BPStats) Sheds() int64 { return s.sheds[0].Load() + s.sheds[1].Load() }

// Trips returns how many times the breakpoint's circuit breaker
// opened (initial trips and failed-probe re-opens).
func (s *BPStats) Trips() int64 { return s.trips.Load() }

// Rearms returns how many times a half-open probe closed the breaker
// again.
func (s *BPStats) Rearms() int64 { return s.rearms.Load() }

// StatsSnapshot is an atomic struct copy of one breakpoint's counters,
// safe to read while the engine is running (each field is loaded
// atomically, so consumers like cmd/cbtables and the incident log never
// see torn values).
type StatsSnapshot struct {
	Name        string
	Arrivals    int64
	LocalFalses int64
	Postpones   int64
	Timeouts    int64
	Hits        int64
	Panics      int64
	Sheds       int64
	Trips       int64
	Rearms      int64
	TotalWait   time.Duration
	MaxWait     time.Duration
	LastHit     time.Time

	// WaitHist is the postponement-wait histogram: per-bucket
	// (non-cumulative) observation counts against telemetry.WaitBuckets;
	// WaitCount is the total observation count (waits above the last
	// bound are in WaitCount but no bucket). Nil/zero when the
	// breakpoint never postponed.
	WaitHist  []int64 `json:",omitempty"`
	WaitCount int64   `json:",omitempty"`
}

// Snapshot returns an atomic copy of the counters.
func (s *BPStats) Snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		Name:        s.name,
		Arrivals:    s.Arrivals(),
		LocalFalses: s.LocalFalses(),
		Postpones:   s.Postpones(),
		Timeouts:    s.Timeouts(),
		Hits:        s.Hits(),
		Panics:      s.Panics(),
		Sheds:       s.Sheds(),
		Trips:       s.Trips(),
		Rearms:      s.Rearms(),
		TotalWait:   s.TotalWait(),
		MaxWait:     s.MaxWait(),
	}
	if ns := s.lastHitUnixNs.Load(); ns != 0 {
		snap.LastHit = time.Unix(0, ns)
	}
	if n := s.waitObs.Load(); n != 0 {
		snap.WaitCount = n
		snap.WaitHist = make([]int64, len(s.waitHist))
		for i := range s.waitHist {
			snap.WaitHist[i] = s.waitHist[i].Load()
		}
	}
	return snap
}

func (s *BPStats) String() string {
	snap := s.Snapshot()
	return fmt.Sprintf("%s: arrivals=%d localFalse=%d postponed=%d timeouts=%d hits=%d wait=%s panics=%d shed=%d trips=%d",
		snap.Name, snap.Arrivals, snap.LocalFalses, snap.Postpones, snap.Timeouts, snap.Hits,
		snap.TotalWait, snap.Panics, snap.Sheds, snap.Trips)
}

// Stats returns the statistics for the named breakpoint, creating an
// empty record if the breakpoint has never been reached. After a Reset
// the returned pointer belongs to the old generation and stops
// updating; call Stats again for the live record.
func (e *Engine) Stats(name string) *BPStats { return e.shard(name).stats }

// AllStats returns statistics for every breakpoint seen by the engine,
// sorted by name. The walk is a lock-free registry traversal; each
// record's counters are atomic, so this is safe (and non-disruptive)
// while the engine is running hot.
func (e *Engine) AllStats() []*BPStats {
	shards := e.shards()
	out := make([]*BPStats, 0, len(shards))
	for _, s := range shards {
		out = append(out, s.stats)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// SnapshotAll returns atomic snapshots of every breakpoint's counters,
// sorted by name.
func (e *Engine) SnapshotAll() []StatsSnapshot {
	all := e.AllStats()
	out := make([]StatsSnapshot, len(all))
	for i, st := range all {
		out[i] = st.Snapshot()
	}
	return out
}

// Report formats all breakpoint statistics as a multi-line string.
func (e *Engine) Report() string {
	var b strings.Builder
	for _, st := range e.AllStats() {
		b.WriteString(st.String())
		b.WriteByte('\n')
	}
	return b.String()
}
