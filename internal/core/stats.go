package core

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// BPStats accumulates per-breakpoint counters. All fields are updated
// atomically; a BPStats value is shared by every Trigger instance with
// the same name on one engine.
type BPStats struct {
	name string

	arrivals      [2]atomic.Int64 // by side: [0]=second-action, [1]=first-action
	localFalses   [2]atomic.Int64
	postpones     [2]atomic.Int64
	timeouts      [2]atomic.Int64
	hits          atomic.Int64
	waitNanos     atomic.Int64 // total time spent postponed
	maxWaitNanos  atomic.Int64
	lastHitUnixNs atomic.Int64
}

func sideIndex(first bool) int {
	if first {
		return 1
	}
	return 0
}

func (s *BPStats) arrived(first bool)    { s.arrivals[sideIndex(first)].Add(1) }
func (s *BPStats) localFalse(first bool) { s.localFalses[sideIndex(first)].Add(1) }
func (s *BPStats) postpone(first bool)   { s.postpones[sideIndex(first)].Add(1) }
func (s *BPStats) timeout(first bool)    { s.timeouts[sideIndex(first)].Add(1) }
func (s *BPStats) hit() {
	s.hits.Add(1)
	s.lastHitUnixNs.Store(time.Now().UnixNano())
}

func (s *BPStats) addWait(d time.Duration) {
	n := int64(d)
	s.waitNanos.Add(n)
	for {
		cur := s.maxWaitNanos.Load()
		if n <= cur || s.maxWaitNanos.CompareAndSwap(cur, n) {
			return
		}
	}
}

func (s *BPStats) sideArrivals(first bool) int64 { return s.arrivals[sideIndex(first)].Load() }

// Name returns the breakpoint name these statistics belong to.
func (s *BPStats) Name() string { return s.name }

// Hits returns how many times the breakpoint has been hit.
func (s *BPStats) Hits() int64 { return s.hits.Load() }

// Arrivals returns the total number of TriggerHere calls on both sides.
func (s *BPStats) Arrivals() int64 { return s.arrivals[0].Load() + s.arrivals[1].Load() }

// Timeouts returns how many postponements expired without a partner.
func (s *BPStats) Timeouts() int64 { return s.timeouts[0].Load() + s.timeouts[1].Load() }

// Postpones returns how many arrivals were postponed.
func (s *BPStats) Postpones() int64 { return s.postpones[0].Load() + s.postpones[1].Load() }

// LocalFalses returns how many arrivals failed the local predicate.
func (s *BPStats) LocalFalses() int64 { return s.localFalses[0].Load() + s.localFalses[1].Load() }

// TotalWait returns the cumulative time goroutines spent postponed on
// this breakpoint; this is the breakpoint's contribution to runtime
// overhead (section 6.2 of the paper).
func (s *BPStats) TotalWait() time.Duration { return time.Duration(s.waitNanos.Load()) }

// MaxWait returns the longest single postponement.
func (s *BPStats) MaxWait() time.Duration { return time.Duration(s.maxWaitNanos.Load()) }

func (s *BPStats) String() string {
	return fmt.Sprintf("%s: arrivals=%d localFalse=%d postponed=%d timeouts=%d hits=%d wait=%s",
		s.name, s.Arrivals(), s.LocalFalses(), s.Postpones(), s.Timeouts(), s.Hits(), s.TotalWait())
}

func (e *Engine) statsFor(name string) *BPStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.stats[name]
	if !ok {
		st = &BPStats{name: name}
		e.stats[name] = st
	}
	return st
}

// Stats returns the statistics for the named breakpoint, creating an
// empty record if the breakpoint has never been reached.
func (e *Engine) Stats(name string) *BPStats { return e.statsFor(name) }

// AllStats returns statistics for every breakpoint seen by the engine,
// sorted by name.
func (e *Engine) AllStats() []*BPStats {
	e.mu.Lock()
	out := make([]*BPStats, 0, len(e.stats))
	for _, st := range e.stats {
		out = append(out, st)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Report formats all breakpoint statistics as a multi-line string.
func (e *Engine) Report() string {
	var b strings.Builder
	for _, st := range e.AllStats() {
		b.WriteString(st.String())
		b.WriteByte('\n')
	}
	return b.String()
}
