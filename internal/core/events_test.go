package core

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestEventLogRecordsLifecycle(t *testing.T) {
	e := newTestEngine()
	e.DefaultTimeout = 10 * time.Millisecond
	obj := new(int)
	// A lonely arrival: arrived -> postponed -> timeout.
	e.TriggerHere(NewConflictTrigger("ev-bp", obj), true, Options{})
	events := e.Events()
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3: %v", len(events), events)
	}
	wantKinds := []EventKind{EventArrived, EventPostponed, EventTimeout}
	for i, ev := range events {
		if ev.Kind != wantKinds[i] || ev.Breakpoint != "ev-bp" || !ev.First {
			t.Fatalf("event %d = %+v", i, ev)
		}
		if ev.GID == 0 || ev.When.IsZero() {
			t.Fatalf("event %d missing metadata: %+v", i, ev)
		}
	}
}

func TestEventLogRecordsHit(t *testing.T) {
	e := newTestEngine()
	obj := new(int)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); e.TriggerHere(NewConflictTrigger("hit-bp", obj), true, Options{}) }()
	go func() { defer wg.Done(); e.TriggerHere(NewConflictTrigger("hit-bp", obj), false, Options{}) }()
	wg.Wait()
	var hits int
	for _, ev := range e.Events() {
		if ev.Kind == EventHit {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("hit events = %d, want 1: %v", hits, e.Events())
	}
}

func TestEventRingBounded(t *testing.T) {
	e := newTestEngine()
	obj := new(int)
	opts := Options{ExtraLocal: func() bool { return false }}
	for i := 0; i < eventLogCapacity+50; i++ {
		e.TriggerHere(NewConflictTrigger("ring", obj), true, opts)
	}
	events := e.Events()
	if len(events) != eventLogCapacity {
		t.Fatalf("ring size = %d, want %d", len(events), eventLogCapacity)
	}
}

func TestOnHitCallback(t *testing.T) {
	e := newTestEngine()
	var called atomic.Int32
	var gotName atomic.Value
	e.SetOnHit(func(name string, arriving, postponed Trigger) {
		called.Add(1)
		gotName.Store(name)
		if arriving == nil || postponed == nil {
			t.Error("nil triggers in OnHit")
		}
	})
	obj := new(int)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); e.TriggerHere(NewConflictTrigger("cb-bp", obj), true, Options{}) }()
	go func() { defer wg.Done(); e.TriggerHere(NewConflictTrigger("cb-bp", obj), false, Options{}) }()
	wg.Wait()
	if called.Load() != 1 {
		t.Fatalf("OnHit called %d times, want 1", called.Load())
	}
	if gotName.Load().(string) != "cb-bp" {
		t.Fatalf("OnHit name = %v", gotName.Load())
	}
	// Removing the callback stops notifications.
	e.SetOnHit(nil)
	wg.Add(2)
	go func() { defer wg.Done(); e.TriggerHere(NewConflictTrigger("cb-bp2", obj), true, Options{}) }()
	go func() { defer wg.Done(); e.TriggerHere(NewConflictTrigger("cb-bp2", obj), false, Options{}) }()
	wg.Wait()
	if called.Load() != 1 {
		t.Fatal("OnHit fired after removal")
	}
}

func TestEventStrings(t *testing.T) {
	kinds := map[EventKind]string{
		EventArrived: "arrived", EventPostponed: "postponed",
		EventHit: "hit", EventTimeout: "timeout", EventKind(9): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
	ev := Event{Kind: EventHit, Breakpoint: "b", GID: 3, First: true}
	if !strings.Contains(ev.String(), "b hit g3 (first side)") {
		t.Fatalf("event string = %q", ev.String())
	}
}

func TestMultiHitEmitsEvent(t *testing.T) {
	e := newTestEngine()
	var called atomic.Int32
	e.SetOnHit(func(name string, a, p Trigger) { called.Add(1) })
	obj := new(int)
	var wg sync.WaitGroup
	for slot := 0; slot < 3; slot++ {
		slot := slot
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.TriggerHereMulti(NewConflictTrigger("multi-ev", obj), slot, 3,
				Options{Timeout: 2 * time.Second})
		}()
	}
	wg.Wait()
	if called.Load() != 1 {
		t.Fatalf("multi OnHit = %d, want 1", called.Load())
	}
}
