package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cbreak/internal/guard"
	"cbreak/internal/telemetry"
)

// Engine implements the BTrigger mechanism: it keeps the set of
// postponed goroutines, matches arriving triggers against it, and
// enforces the ordering action of a hit breakpoint.
//
// State is sharded per breakpoint name (shard.go): each breakpoint owns
// its own mutex, postponed lists, statistics, circuit breaker, and
// event ring, so arrivals on unrelated breakpoints never contend.
// Shards are resolved through a lock-free registry and can be pinned on
// a Breakpoint handle (handle.go) to skip even the registry lookup.
//
// An Engine is safe for concurrent use. The zero value is not usable;
// create engines with NewEngine. Most programs use the package-level
// default engine through the cbreak facade.
type Engine struct {
	enabled atomic.Bool

	// DefaultTimeout is the pause time T applied when Options.Timeout
	// is zero. The paper uses 100ms as the default.
	DefaultTimeout time.Duration

	// OrderWindow is how long the second-action goroutine yields after
	// the first-action goroutine has been released, when the first side
	// used plain TriggerHere (no explicit handshake). It gives the
	// first side's next instruction time to execute first.
	OrderWindow time.Duration

	// registry maps breakpoint name → *bpState. Reset swaps the whole
	// map atomically and retires the old shards, which is why the
	// pointer indirection exists (see shard.go).
	registry atomic.Pointer[sync.Map]

	seq      atomic.Uint64 // arrival sequence, for deterministic matching order
	eventSeq atomic.Uint64 // global event sequence; orders the merged Events() view
	onHit    atomic.Pointer[onHitBox]

	// bus is the engine's telemetry bus: every event and incident is
	// published on it, and every consumer — durable journal sink
	// (durable.go, attached as a synchronous tap), live NDJSON streams,
	// stream metric counters — hangs off it. With no listeners a publish
	// is one atomic load, the same price the old durable-sink check paid.
	bus     *telemetry.Bus
	durable durableState // tracks the durable sink's bus tap (durable.go)

	// postponedTotal counts currently-postponed goroutines across all
	// shards (two-way and multi-way). Maintained at the shard append /
	// remove sites; the overload layer (overload.go) and the wait-graph
	// supervisor read it lock-free.
	postponedTotal atomic.Int64

	// Overload protection (overload.go): bounded postponed populations
	// and adaptive postponement budgets, configured like the breaker
	// (atomic pointer + lazy per-shard epoch rebuild).
	overloadCfg atomic.Pointer[OverloadConfig]
	ovEpoch     atomic.Uint64

	// Hardening layer (hardening.go): incident log, circuit-breaker
	// configuration, fault injector, action-panic policy, watchdog.
	incidents           guard.IncidentLog
	breakerCfg          atomic.Pointer[guard.BreakerConfig]
	brEpoch             atomic.Uint64 // bumped by SetBreakerConfig; shards rebuild lazily
	injector            atomic.Value  // *injectorBox
	isolateActionPanics atomic.Bool

	wdMu   sync.Mutex
	wdStop chan struct{}
	wdDone chan struct{}
}

// yield gives other goroutines the processor during ordering windows.
func yield() { runtime.Gosched() }

// NewEngine returns an enabled engine with the paper's default pause
// time of 100ms and a 100µs ordering window.
func NewEngine() *Engine {
	e := &Engine{
		DefaultTimeout: 100 * time.Millisecond,
		OrderWindow:    100 * time.Microsecond,
		bus:            telemetry.NewBus(),
	}
	e.registry.Store(new(sync.Map))
	e.enabled.Store(true)
	return e
}

// SetEnabled turns the engine on or off. Disabled breakpoints cost a
// single atomic load, so they can be left in production code like
// assertions.
func (e *Engine) SetEnabled(v bool) { e.enabled.Store(v) }

// Enabled reports whether the engine is active.
func (e *Engine) Enabled() bool { return e.enabled.Load() }

// Reset discards all postponed waiters, statistics, breaker state, and
// event history. Any currently postponed goroutines are released with a
// timeout outcome. Reset swaps in a fresh shard registry and retires
// the old shards one at a time — there is no stop-the-world lock, and
// arrivals racing with Reset land on either the old or the new
// generation, never blocked on both. Breakpoint handles survive a
// Reset: they detect the retired shard and transparently re-resolve
// (see handle.go for the exact staleness contract).
func (e *Engine) Reset() {
	old := e.registry.Swap(new(sync.Map))
	old.Range(func(_, v any) bool {
		v.(*bpState).retire()
		return true
	})
}

// matchResult is delivered to a postponed waiter when a partner arrives.
type matchResult struct {
	other     Trigger
	iAmFirst  bool
	firstDone chan struct{} // closed when the first side has proceeded
}

// waiter states, guarded by the owning shard's mutex.
const (
	waiterWaiting = iota
	waiterMatched
	waiterCancelled
)

type waiter struct {
	t        Trigger
	first    bool
	gid      uint64
	seq      uint64
	ch       chan matchResult // buffered, capacity 1
	cancelCh chan struct{}    // closed by Reset/watchdog to release the waiter
	state    int              // guarded by shard mu
	action   func()           // optional first-action instruction (TriggerHereAnd)

	// deadline is when the requested postponement budget expires; the
	// watchdog force-releases waiters stuck past it (plus grace).
	deadline time.Time
	// cancelOutcome is the outcome a cancelled waiter reports, set
	// under the shard mutex before cancelCh is closed (OutcomeTimeout
	// for Reset/watchdog, OutcomePanic for poisoned-predicate release).
	// The close of cancelCh publishes it, so the released goroutine
	// reads it without re-taking the lock.
	cancelOutcome Outcome
}

// TriggerHere announces that the calling goroutine has reached one side
// of the breakpoint t. first states the breakpoint's ordering action: the
// side called with first=true executes its next instruction before the
// side called with first=false. TriggerHere returns true if and only if
// the breakpoint was hit (both sides arrived, all predicates held, and
// the ordering was enforced).
//
// Mechanism (section 3 of the paper): if the local predicate holds, the
// goroutine is postponed for up to the timeout, waiting in the engine's
// Postponed set. If a partner with a satisfied joint predicate arrives
// in the meantime, the breakpoint is hit; otherwise the goroutine times
// out and continues, so a breakpoint can never deadlock the program.
//
// TriggerHere resolves the breakpoint's shard by name on every call;
// hot call sites can hoist the lookup with Engine.Breakpoint.
func (e *Engine) TriggerHere(t Trigger, first bool, opts Options) bool {
	if !e.enabled.Load() {
		return false
	}
	return e.trigger(e.shard(t.Name()), t, first, opts, nil) == OutcomeHit
}

// TriggerHereAnd is TriggerHere with a strict ordering handshake: when
// this call is the first-action side of a hit breakpoint, action (the
// "next instruction" at the breakpoint location) runs inside the call and
// the second side is released only after action returns. When the
// breakpoint is not hit, or this is the second-action side, action runs
// before TriggerHereAnd returns as well, so call sites can uniformly move
// the guarded instruction into action.
func (e *Engine) TriggerHereAnd(t Trigger, first bool, opts Options, action func()) bool {
	if !e.enabled.Load() {
		if action != nil {
			action()
		}
		return false
	}
	return e.trigger(e.shard(t.Name()), t, first, opts, action) == OutcomeHit
}

// TriggerOutcome is TriggerHere returning the full outcome rather than
// just hit/miss; useful for tests and statistics.
func (e *Engine) TriggerOutcome(t Trigger, first bool, opts Options) Outcome {
	if !e.enabled.Load() {
		return OutcomeDisabled
	}
	return e.trigger(e.shard(t.Name()), t, first, opts, nil)
}

// trigger is the two-way arrival path. s is the breakpoint's shard,
// resolved by the caller (by name, or pinned on a handle); all state the
// arrival touches lives on it.
func (e *Engine) trigger(s *bpState, t Trigger, first bool, opts Options, action func()) Outcome {
	if !e.enabled.Load() || s.disabled.Load() {
		if action != nil {
			action()
		}
		return OutcomeDisabled
	}
	name := s.name
	st := s.stats
	br := s.breakerFor(e)
	st.arrived(first)
	fault := e.faultFor(name, first)

	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = e.DefaultTimeout
	}

	if br != nil {
		admit, tr := br.Allow(time.Now())
		e.noteBreakerTransition(name, st, br, tr)
		if !admit {
			// Breaker open: the breakpoint is tripped; pass straight
			// through at near-zero cost.
			st.shed(first)
			e.logEvent(s, EventArrived, 0, first)
			if e.execAction(name, 0, st, fault, 0, action) {
				return OutcomePanic
			}
			return OutcomeShed
		}
	}

	ok, pv, panicked := e.evalLocal(t, first, opts, st, fault)
	if panicked {
		return e.absorbPredPanic(name, "local", 0, st, fault, pv, action)
	}
	if !ok || fault.Drop {
		st.localFalse(first)
		// Log without the goroutine-id stack parse: local-false is the
		// hot rejection path for refined breakpoints on busy sites.
		e.logEvent(s, EventArrived, 0, first)
		if e.execAction(name, 0, st, fault, 0, action) {
			return OutcomePanic
		}
		return OutcomeLocalFalse
	}

	gid := goroutineID()
	e.logEvent(s, EventArrived, gid, first)

	// Lock the live shard; a racing Reset may have retired s, in which
	// case we continue on its replacement (and its counters).
	s = e.lockLive(s)
	st = s.stats
	// Try to match an already-postponed partner.
	w, poisoned, gpv := s.findPartner(t, first, gid, fault)
	if poisoned != nil {
		// The joint predicate panicked against this waiter: release the
		// partner so nothing stays postponed behind a broken predicate,
		// and absorb the panic.
		s.releaseWaiterLocked(poisoned, OutcomePanic)
		s.mu.Unlock()
		return e.absorbPredPanic(name, "global", gid, st, fault, gpv, action)
	}
	if w != nil {
		s.removeWaiter(w)
		w.state = waiterMatched
		st.hit()
		e.logEvent(s, EventHit, gid, first)
		e.emitHit(name, t, w.t)
		fd := make(chan struct{})
		if first {
			// We are the first-action side; the postponed partner is second.
			w.ch <- matchResult{other: t, iAmFirst: false, firstDone: fd}
			s.mu.Unlock()
			e.reportBreaker(br, name, st, true)
			return e.runFirst(name, gid, st, fault, timeout, fd, action)
		}
		// The postponed partner is the first-action side.
		w.ch <- matchResult{other: t, iAmFirst: true, firstDone: fd}
		s.mu.Unlock()
		e.reportBreaker(br, name, st, true)
		e.awaitFirst(fd, timeout)
		if e.execAction(name, gid, st, fault, timeout, action) {
			return OutcomePanic
		}
		return OutcomeHit
	}

	// No partner yet: postpone ourselves — if the overload layer admits
	// another waiter. At the bound the arrival is shed instead: it
	// passes straight through like a tripped breaker's, trading hit
	// probability for a bounded postponed population.
	ov := s.overloadFor(e)
	global := e.postponedTotal.Load()
	if reason, shed := ov.shedReason(len(s.postponed)+len(s.multi), global); shed {
		s.mu.Unlock()
		st.shed(first)
		e.recordIncident(guard.KindOverloadShed, name, gid, reason)
		if e.execAction(name, gid, st, fault, 0, action) {
			return OutcomePanic
		}
		return OutcomeShed
	}
	// Under pressure the granted budget shrinks below the requested
	// timeout (overload.go), draining the backlog faster as it grows.
	budget := ov.budget(timeout, global)
	w = &waiter{t: t, first: first, gid: gid, seq: e.seq.Add(1),
		ch: make(chan matchResult, 1), cancelCh: make(chan struct{}), action: action,
		deadline: time.Now().Add(budget)}
	s.postponed = append(s.postponed, w)
	e.postponedTotal.Add(1)
	st.postpone(first)
	s.mu.Unlock()
	e.logEvent(s, EventPostponed, gid, first)

	selectTimeout := budget
	if fault.WedgeWait {
		// Injected broken timer: only a partner, Reset, or the watchdog
		// can release this waiter.
		selectTimeout = wedgedTimeout
	}
	timer := time.NewTimer(selectTimeout)
	defer timer.Stop()
	start := time.Now()
	select {
	case res := <-w.ch:
		st.addWait(time.Since(start))
		e.reportBreaker(br, name, st, true)
		return e.finishMatch(name, gid, st, fault, res, action, timeout)
	case <-w.cancelCh:
		// Reset, the watchdog, or a poisoned-predicate release freed us.
		// The close happens after cancelOutcome was set under the shard
		// mutex, so the plain read is ordered.
		st.addWait(time.Since(start))
		out := w.cancelOutcome
		if out == OutcomeDisabled { // never set: defensive default
			out = OutcomeTimeout
		}
		if out == OutcomeTimeout {
			e.reportBreaker(br, name, st, false)
		}
		if e.execAction(name, gid, st, fault, timeout, action) {
			return OutcomePanic
		}
		return out
	case <-timer.C:
		s.mu.Lock()
		if w.state == waiterMatched {
			// Matched concurrently with the timeout; honor the match.
			s.mu.Unlock()
			res := <-w.ch
			st.addWait(time.Since(start))
			e.reportBreaker(br, name, st, true)
			return e.finishMatch(name, gid, st, fault, res, action, timeout)
		}
		s.removeWaiter(w)
		w.state = waiterCancelled
		s.mu.Unlock()
		st.addWait(time.Since(start))
		st.timeout(first)
		e.logEvent(s, EventTimeout, gid, first)
		e.reportBreaker(br, name, st, false)
		if e.execAction(name, gid, st, fault, timeout, action) {
			return OutcomePanic
		}
		return OutcomeTimeout
	}
}

func (e *Engine) finishMatch(name string, gid uint64, st *BPStats, fault guard.Fault, res matchResult, action func(), timeout time.Duration) Outcome {
	if res.iAmFirst {
		return e.runFirst(name, gid, st, fault, timeout, res.firstDone, action)
	}
	e.awaitFirst(res.firstDone, timeout)
	if e.execAction(name, gid, st, fault, timeout, action) {
		return OutcomePanic
	}
	return OutcomeHit
}

// runFirst executes the first-action side's next instruction (if the
// caller supplied one) and then releases the second side. The release is
// deferred so a panicking action (e.g. the guarded instruction throwing
// the very exception the breakpoint reproduces) still frees the partner
// whether the panic is re-thrown or absorbed (SetIsolateActionPanics).
func (e *Engine) runFirst(name string, gid uint64, st *BPStats, fault guard.Fault, budget time.Duration, firstDone chan struct{}, action func()) Outcome {
	if action == nil && fault.Zero() {
		// No explicit next instruction: release the partner immediately;
		// the partner additionally yields for OrderWindow so that this
		// goroutine's next instruction very likely runs first.
		close(firstDone)
		return OutcomeHit
	}
	defer close(firstDone)
	if e.execAction(name, gid, st, fault, budget, action) {
		return OutcomePanic
	}
	return OutcomeHit
}

// awaitFirst blocks the second-action side until the first side has
// proceeded, then yields for the ordering window. The window is a
// Gosched spin rather than a sleep: OS timer quantization would stretch
// a sub-millisecond sleep to a full tick, letting the first side's
// *subsequent* instructions win the race against the second side's next
// instruction and undoing the ordering the breakpoint promised.
func (e *Engine) awaitFirst(firstDone chan struct{}, timeout time.Duration) {
	select {
	case <-firstDone:
		// Common case: the first side has already proceeded (it releases
		// immediately when it has no action), so no timer is ever built.
	default:
		timer := time.NewTimer(timeout)
		select {
		case <-firstDone:
		case <-timer.C:
			// Defensive: never block forever even if the first side stalls.
		}
		timer.Stop()
	}
	if e.OrderWindow > 0 {
		deadline := time.Now().Add(e.OrderWindow)
		for time.Now().Before(deadline) {
			runtime.Gosched()
		}
	}
}

// findPartner scans the shard's postponed set for the oldest waiter that
// is a valid partner for t: the opposite side of the breakpoint (the
// paper's i != j condition), a different goroutine, and a satisfied
// joint predicate (evaluated, as in the paper's library, as the arriving
// side's predicateGlobal against the postponed side). The predicate
// runs isolated: if it panics, the scan stops and the waiter whose
// pairing panicked is returned as poisoned along with the panic value,
// so the caller can release it and absorb the failure. Caller holds
// s.mu.
func (s *bpState) findPartner(t Trigger, first bool, gid uint64, fault guard.Fault) (best, poisoned *waiter, pv any) {
	for _, w := range s.postponed {
		if w.state != waiterWaiting || w.gid == gid || w.first == first {
			continue
		}
		other := w.t
		ok, p, panicked := protectBool(func() bool {
			if fault.PanicGlobal {
				panic(guard.InjectedPanic{Breakpoint: s.name, Site: "global"})
			}
			return t.PredicateGlobal(other)
		})
		if panicked {
			return nil, w, p
		}
		if !ok {
			continue
		}
		if best == nil || w.seq < best.seq {
			best = w
		}
	}
	return best, nil, nil
}

// PostponedCount returns the number of goroutines currently postponed on
// the named breakpoint (both sides). Mainly for tests and diagnostics.
func (e *Engine) PostponedCount(name string) int {
	s, ok := e.lookupShard(name)
	if !ok {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.postponed)
}
