package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cbreak/internal/guard"
)

// Engine implements the BTrigger mechanism: it keeps the set of
// postponed goroutines, matches arriving triggers against it, and
// enforces the ordering action of a hit breakpoint.
//
// An Engine is safe for concurrent use. The zero value is not usable;
// create engines with NewEngine. Most programs use the package-level
// default engine through the cbreak facade.
type Engine struct {
	enabled atomic.Bool

	// DefaultTimeout is the pause time T applied when Options.Timeout
	// is zero. The paper uses 100ms as the default.
	DefaultTimeout time.Duration

	// OrderWindow is how long the second-action goroutine yields after
	// the first-action goroutine has been released, when the first side
	// used plain TriggerHere (no explicit handshake). It gives the
	// first side's next instruction time to execute first.
	OrderWindow time.Duration

	mu        sync.Mutex
	postponed map[string][]*waiter
	multi     map[string][]*mwaiter // N-way breakpoints (multi.go)
	stats     map[string]*BPStats
	breakers  map[string]*guard.Breaker // per-breakpoint circuit breakers
	seq       uint64                    // arrival sequence, for deterministic matching order

	events eventLog // bounded event history + hit callback (events.go)

	// Hardening layer (hardening.go): incident log, circuit-breaker
	// configuration, fault injector, action-panic policy, watchdog.
	incidents           guard.IncidentLog
	breakerCfg          atomic.Pointer[guard.BreakerConfig]
	injector            atomic.Value // *injectorBox
	isolateActionPanics atomic.Bool

	wdMu   sync.Mutex
	wdStop chan struct{}
	wdDone chan struct{}
}

// yield gives other goroutines the processor during ordering windows.
func yield() { runtime.Gosched() }

// NewEngine returns an enabled engine with the paper's default pause
// time of 100ms and a 100µs ordering window.
func NewEngine() *Engine {
	e := &Engine{
		DefaultTimeout: 100 * time.Millisecond,
		OrderWindow:    100 * time.Microsecond,
		postponed:      make(map[string][]*waiter),
		multi:          make(map[string][]*mwaiter),
		stats:          make(map[string]*BPStats),
		breakers:       make(map[string]*guard.Breaker),
	}
	e.enabled.Store(true)
	return e
}

// SetEnabled turns the engine on or off. Disabled breakpoints cost a
// single atomic load, so they can be left in production code like
// assertions.
func (e *Engine) SetEnabled(v bool) { e.enabled.Store(v) }

// Enabled reports whether the engine is active.
func (e *Engine) Enabled() bool { return e.enabled.Load() }

// Reset discards all postponed waiters and statistics. Any currently
// postponed goroutines are released with a timeout outcome.
func (e *Engine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ws := range e.postponed {
		for _, w := range ws {
			if w.state == waiterWaiting {
				w.state = waiterCancelled
				w.cancelOutcome = OutcomeTimeout
				close(w.cancelCh)
			}
		}
	}
	for _, ws := range e.multi {
		for _, w := range ws {
			if w.state == waiterWaiting {
				w.state = waiterCancelled
				w.cancelOutcome = OutcomeTimeout
				close(w.cancelCh)
			}
		}
	}
	e.postponed = make(map[string][]*waiter)
	e.multi = make(map[string][]*mwaiter)
	e.stats = make(map[string]*BPStats)
	e.breakers = make(map[string]*guard.Breaker)
}

// matchResult is delivered to a postponed waiter when a partner arrives.
type matchResult struct {
	other     Trigger
	iAmFirst  bool
	firstDone chan struct{} // closed when the first side has proceeded
}

// waiter states, guarded by the engine mutex.
const (
	waiterWaiting = iota
	waiterMatched
	waiterCancelled
)

type waiter struct {
	t        Trigger
	first    bool
	gid      uint64
	seq      uint64
	ch       chan matchResult // buffered, capacity 1
	cancelCh chan struct{}    // closed by Reset/watchdog to release the waiter
	state    int              // guarded by engine mu
	action   func()           // optional first-action instruction (TriggerHereAnd)

	// deadline is when the requested postponement budget expires; the
	// watchdog force-releases waiters stuck past it (plus grace).
	deadline time.Time
	// cancelOutcome is the outcome a cancelled waiter reports, set
	// under the engine mutex before cancelCh is closed (OutcomeTimeout
	// for Reset/watchdog, OutcomePanic for poisoned-predicate release).
	cancelOutcome Outcome
}

// TriggerHere announces that the calling goroutine has reached one side
// of the breakpoint t. first states the breakpoint's ordering action: the
// side called with first=true executes its next instruction before the
// side called with first=false. TriggerHere returns true if and only if
// the breakpoint was hit (both sides arrived, all predicates held, and
// the ordering was enforced).
//
// Mechanism (section 3 of the paper): if the local predicate holds, the
// goroutine is postponed for up to the timeout, waiting in the engine's
// Postponed set. If a partner with a satisfied joint predicate arrives
// in the meantime, the breakpoint is hit; otherwise the goroutine times
// out and continues, so a breakpoint can never deadlock the program.
func (e *Engine) TriggerHere(t Trigger, first bool, opts Options) bool {
	return e.trigger(t, first, opts, nil) == OutcomeHit
}

// TriggerHereAnd is TriggerHere with a strict ordering handshake: when
// this call is the first-action side of a hit breakpoint, action (the
// "next instruction" at the breakpoint location) runs inside the call and
// the second side is released only after action returns. When the
// breakpoint is not hit, or this is the second-action side, action runs
// before TriggerHereAnd returns as well, so call sites can uniformly move
// the guarded instruction into action.
func (e *Engine) TriggerHereAnd(t Trigger, first bool, opts Options, action func()) bool {
	out := e.trigger(t, first, opts, action)
	return out == OutcomeHit
}

// TriggerOutcome is TriggerHere returning the full outcome rather than
// just hit/miss; useful for tests and statistics.
func (e *Engine) TriggerOutcome(t Trigger, first bool, opts Options) Outcome {
	return e.trigger(t, first, opts, nil)
}

func (e *Engine) trigger(t Trigger, first bool, opts Options, action func()) Outcome {
	if !e.enabled.Load() {
		if action != nil {
			action()
		}
		return OutcomeDisabled
	}
	name := t.Name()
	st, br := e.statsAndBreaker(name)
	st.arrived(first)
	fault := e.faultFor(name, first)

	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = e.DefaultTimeout
	}

	if br != nil {
		admit, tr := br.Allow(time.Now())
		e.noteBreakerTransition(name, st, br, tr)
		if !admit {
			// Breaker open: the breakpoint is tripped; pass straight
			// through at near-zero cost.
			st.shed(first)
			e.logEvent(EventArrived, name, 0, first)
			if e.execAction(name, 0, st, fault, 0, action) {
				return OutcomePanic
			}
			return OutcomeShed
		}
	}

	ok, pv, panicked := e.evalLocal(t, first, opts, st, fault)
	if panicked {
		return e.absorbPredPanic(name, "local", 0, st, fault, pv, action)
	}
	if !ok || fault.Drop {
		st.localFalse(first)
		// Log without the goroutine-id stack parse: local-false is the
		// hot rejection path for refined breakpoints on busy sites.
		e.logEvent(EventArrived, name, 0, first)
		if e.execAction(name, 0, st, fault, 0, action) {
			return OutcomePanic
		}
		return OutcomeLocalFalse
	}

	gid := goroutineID()
	e.logEvent(EventArrived, name, gid, first)

	e.mu.Lock()
	// Try to match an already-postponed partner.
	w, poisoned, gpv := e.findPartner(name, t, first, gid, fault)
	if poisoned != nil {
		// The joint predicate panicked against this waiter: release the
		// partner so nothing stays postponed behind a broken predicate,
		// and absorb the panic.
		e.releaseWaiterLocked(name, poisoned, OutcomePanic)
		e.mu.Unlock()
		return e.absorbPredPanic(name, "global", gid, st, fault, gpv, action)
	}
	if w != nil {
		e.removeWaiter(name, w)
		w.state = waiterMatched
		st.hit()
		e.logEvent(EventHit, name, gid, first)
		e.emitHit(name, t, w.t)
		fd := make(chan struct{})
		if first {
			// We are the first-action side; the postponed partner is second.
			w.ch <- matchResult{other: t, iAmFirst: false, firstDone: fd}
			e.mu.Unlock()
			e.reportBreaker(br, name, st, true)
			return e.runFirst(name, gid, st, fault, timeout, fd, action)
		}
		// The postponed partner is the first-action side.
		w.ch <- matchResult{other: t, iAmFirst: true, firstDone: fd}
		e.mu.Unlock()
		e.reportBreaker(br, name, st, true)
		e.awaitFirst(fd, timeout)
		if e.execAction(name, gid, st, fault, timeout, action) {
			return OutcomePanic
		}
		return OutcomeHit
	}

	// No partner yet: postpone ourselves.
	e.seq++
	w = &waiter{t: t, first: first, gid: gid, seq: e.seq,
		ch: make(chan matchResult, 1), cancelCh: make(chan struct{}), action: action,
		deadline: time.Now().Add(timeout)}
	e.postponed[name] = append(e.postponed[name], w)
	st.postpone(first)
	e.mu.Unlock()
	e.logEvent(EventPostponed, name, gid, first)

	selectTimeout := timeout
	if fault.WedgeWait {
		// Injected broken timer: only a partner, Reset, or the watchdog
		// can release this waiter.
		selectTimeout = wedgedTimeout
	}
	timer := time.NewTimer(selectTimeout)
	defer timer.Stop()
	start := time.Now()
	select {
	case res := <-w.ch:
		st.addWait(time.Since(start))
		e.reportBreaker(br, name, st, true)
		return e.finishMatch(name, gid, st, fault, res, action, timeout)
	case <-w.cancelCh:
		// Reset, the watchdog, or a poisoned-predicate release freed us.
		st.addWait(time.Since(start))
		out := e.cancelOutcomeOf(func() Outcome { return w.cancelOutcome })
		if out == OutcomeTimeout {
			e.reportBreaker(br, name, st, false)
		}
		if e.execAction(name, gid, st, fault, timeout, action) {
			return OutcomePanic
		}
		return out
	case <-timer.C:
		e.mu.Lock()
		if w.state == waiterMatched {
			// Matched concurrently with the timeout; honor the match.
			e.mu.Unlock()
			res := <-w.ch
			st.addWait(time.Since(start))
			e.reportBreaker(br, name, st, true)
			return e.finishMatch(name, gid, st, fault, res, action, timeout)
		}
		e.removeWaiter(name, w)
		w.state = waiterCancelled
		e.mu.Unlock()
		st.addWait(time.Since(start))
		st.timeout(first)
		e.logEvent(EventTimeout, name, gid, first)
		e.reportBreaker(br, name, st, false)
		if e.execAction(name, gid, st, fault, timeout, action) {
			return OutcomePanic
		}
		return OutcomeTimeout
	}
}

func (e *Engine) finishMatch(name string, gid uint64, st *BPStats, fault guard.Fault, res matchResult, action func(), timeout time.Duration) Outcome {
	if res.iAmFirst {
		return e.runFirst(name, gid, st, fault, timeout, res.firstDone, action)
	}
	e.awaitFirst(res.firstDone, timeout)
	if e.execAction(name, gid, st, fault, timeout, action) {
		return OutcomePanic
	}
	return OutcomeHit
}

// runFirst executes the first-action side's next instruction (if the
// caller supplied one) and then releases the second side. The release is
// deferred so a panicking action (e.g. the guarded instruction throwing
// the very exception the breakpoint reproduces) still frees the partner
// whether the panic is re-thrown or absorbed (SetIsolateActionPanics).
func (e *Engine) runFirst(name string, gid uint64, st *BPStats, fault guard.Fault, budget time.Duration, firstDone chan struct{}, action func()) Outcome {
	if action == nil && fault.Zero() {
		// No explicit next instruction: release the partner immediately;
		// the partner additionally yields for OrderWindow so that this
		// goroutine's next instruction very likely runs first.
		close(firstDone)
		return OutcomeHit
	}
	defer close(firstDone)
	if e.execAction(name, gid, st, fault, budget, action) {
		return OutcomePanic
	}
	return OutcomeHit
}

// awaitFirst blocks the second-action side until the first side has
// proceeded, then yields for the ordering window. The window is a
// Gosched spin rather than a sleep: OS timer quantization would stretch
// a sub-millisecond sleep to a full tick, letting the first side's
// *subsequent* instructions win the race against the second side's next
// instruction and undoing the ordering the breakpoint promised.
func (e *Engine) awaitFirst(firstDone chan struct{}, timeout time.Duration) {
	select {
	case <-firstDone:
	case <-time.After(timeout):
		// Defensive: never block forever even if the first side stalls.
	}
	if e.OrderWindow > 0 {
		deadline := time.Now().Add(e.OrderWindow)
		for time.Now().Before(deadline) {
			runtime.Gosched()
		}
	}
}

// findPartner scans the postponed set for the oldest waiter that is a
// valid partner for t: the opposite side of the breakpoint (the paper's
// i != j condition), a different goroutine, and a satisfied joint
// predicate (evaluated, as in the paper's library, as the arriving
// side's predicateGlobal against the postponed side). The predicate
// runs isolated: if it panics, the scan stops and the waiter whose
// pairing panicked is returned as poisoned along with the panic value,
// so the caller can release it and absorb the failure.
func (e *Engine) findPartner(name string, t Trigger, first bool, gid uint64, fault guard.Fault) (best, poisoned *waiter, pv any) {
	for _, w := range e.postponed[name] {
		if w.state != waiterWaiting || w.gid == gid || w.first == first {
			continue
		}
		other := w.t
		ok, p, panicked := protectBool(func() bool {
			if fault.PanicGlobal {
				panic(guard.InjectedPanic{Breakpoint: name, Site: "global"})
			}
			return t.PredicateGlobal(other)
		})
		if panicked {
			return nil, w, p
		}
		if !ok {
			continue
		}
		if best == nil || w.seq < best.seq {
			best = w
		}
	}
	return best, nil, nil
}

func (e *Engine) removeWaiter(name string, w *waiter) {
	ws := e.postponed[name]
	for i, x := range ws {
		if x == w {
			ws[i] = ws[len(ws)-1]
			e.postponed[name] = ws[:len(ws)-1]
			return
		}
	}
}

// PostponedCount returns the number of goroutines currently postponed on
// the named breakpoint (both sides). Mainly for tests and diagnostics.
func (e *Engine) PostponedCount(name string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.postponed[name])
}
