package core

import (
	"cbreak/internal/telemetry"
)

// This file is the engine's binding to the typed telemetry core
// (internal/telemetry): the bus accessor, the per-breakpoint
// administrative toggle the live control plane flips, and the metric
// collector that exposes the engine's sharded state through the
// declared catalog.
//
// The collector is pull-based by design: it reads the same atomic
// counters the engine already maintains (BPStats, postponedTotal, the
// registry walk) at scrape time, so exporting metrics adds zero
// instructions — and zero locks — to the trigger hot path.

// Bus returns the engine's telemetry bus. Every engine event and guard
// incident is published on it; the durable journal sink consumes it as
// a synchronous tap (SetDurableSink), live streams subscribe to it, and
// telemetry.Registry.WireBus counts its records.
func (e *Engine) Bus() *telemetry.Bus { return e.bus }

// SetBreakpointEnabled administratively enables or disables one
// breakpoint while the engine stays up: a disabled breakpoint's
// arrivals return OutcomeDisabled at the cost of one extra atomic load
// (actions still run, exactly like an engine-wide disable). The flag
// lives on the breakpoint's shard — created here if the breakpoint has
// not been reached yet, so a breakpoint can be pre-disabled before its
// first arrival — and is discarded by Reset with the rest of the
// shard's state.
func (e *Engine) SetBreakpointEnabled(name string, enabled bool) {
	e.shard(name).disabled.Store(!enabled)
}

// BreakpointEnabled reports whether the named breakpoint is
// administratively enabled (true for breakpoints never toggled,
// including ones the engine has not seen).
func (e *Engine) BreakpointEnabled(name string) bool {
	s, ok := e.lookupShard(name)
	return !ok || !s.disabled.Load()
}

// RegisterMetrics registers the engine's catalog collectors on reg:
// engine-wide gauges (enabled, postponed population, overload water
// marks), every breakpoint's BPStats counters and wait histogram,
// per-breakpoint enable/breaker state, and incident totals by kind.
// Collection is lock-free with respect to arrivals — it walks the shard
// registry and loads atomics, the same reads SnapshotAll does.
func (e *Engine) RegisterMetrics(reg *telemetry.Registry) {
	reg.RegisterCollector(func(emit func(telemetry.Sample)) {
		emit(telemetry.Sample{Desc: telemetry.DescEngineEnabled, Value: boolGauge(e.Enabled())})
		emit(telemetry.Sample{Desc: telemetry.DescPostponedWaiters, Value: float64(e.PostponedTotal())})
		if ov, ok := e.Overload(); ok {
			emit(telemetry.Sample{Desc: telemetry.DescOverloadHighWater, Value: float64(ov.GlobalHighWater)})
			emit(telemetry.Sample{Desc: telemetry.DescOverloadSoftWater, Value: float64(ov.SoftWater)})
			emit(telemetry.Sample{Desc: telemetry.DescOverloadMaxPerShard, Value: float64(ov.MaxPerShard)})
		}

		for _, s := range e.AllStats() {
			name := s.Name()
			labels := []string{name}
			emit(telemetry.Sample{Desc: telemetry.DescBPEnabled, Labels: labels,
				Value: boolGauge(e.BreakpointEnabled(name))})
			emit(telemetry.Sample{Desc: telemetry.DescBPArrivals, Labels: labels, Value: float64(s.Arrivals())})
			emit(telemetry.Sample{Desc: telemetry.DescBPLocalFalses, Labels: labels, Value: float64(s.LocalFalses())})
			emit(telemetry.Sample{Desc: telemetry.DescBPPostpones, Labels: labels, Value: float64(s.Postpones())})
			emit(telemetry.Sample{Desc: telemetry.DescBPTimeouts, Labels: labels, Value: float64(s.Timeouts())})
			emit(telemetry.Sample{Desc: telemetry.DescBPHits, Labels: labels, Value: float64(s.Hits())})
			emit(telemetry.Sample{Desc: telemetry.DescBPPanics, Labels: labels, Value: float64(s.Panics())})
			emit(telemetry.Sample{Desc: telemetry.DescBPSheds, Labels: labels, Value: float64(s.Sheds())})
			emit(telemetry.Sample{Desc: telemetry.DescBPBreakerTrips, Labels: labels, Value: float64(s.Trips())})
			emit(telemetry.Sample{Desc: telemetry.DescBPBreakerRearms, Labels: labels, Value: float64(s.Rearms())})
			if br, ok := e.BreakerSnapshot(name); ok {
				emit(telemetry.Sample{Desc: telemetry.DescBPBreakerState, Labels: labels,
					Value: float64(br.State)})
			}
			snap := s.Snapshot()
			if snap.WaitCount > 0 {
				hist := &telemetry.HistSample{
					BucketCounts: make([]uint64, len(snap.WaitHist)),
					Sum:          snap.TotalWait.Seconds(),
					Count:        uint64(snap.WaitCount),
				}
				for i, n := range snap.WaitHist {
					hist.BucketCounts[i] = uint64(n)
				}
				emit(telemetry.Sample{Desc: telemetry.DescBPWait, Labels: labels, Hist: hist})
			}
			emit(telemetry.Sample{Desc: telemetry.DescBPMaxWait, Labels: labels,
				Value: snap.MaxWait.Seconds()})
			if !snap.LastHit.IsZero() {
				emit(telemetry.Sample{Desc: telemetry.DescBPLastHit, Labels: labels,
					Value: float64(snap.LastHit.UnixNano()) / 1e9})
			}
		}

		for kind, n := range e.IncidentCounts() {
			emit(telemetry.Sample{Desc: telemetry.DescIncidents, Labels: []string{kind}, Value: float64(n)})
		}
	})
}

func boolGauge(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
