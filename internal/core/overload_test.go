package core

import (
	"sync"
	"testing"
	"time"

	"cbreak/internal/guard"
)

// postponeN parks n goroutines on the named breakpoint's first side
// (same side, so they can never match each other) with a long timeout,
// and waits until all are postponed. Returns a cleanup that unblocks
// them via Reset and joins.
func postponeN(t *testing.T, e *Engine, name string, n int) func() {
	t.Helper()
	obj := new(int)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.TriggerHere(NewConflictTrigger(name, obj), true, Options{Timeout: 10 * time.Second})
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.PostponedCount(name) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters postponed on %s", e.PostponedCount(name), n, name)
		}
		time.Sleep(time.Millisecond)
	}
	return func() {
		e.Reset()
		wg.Wait()
	}
}

func TestOverloadShedsAtPerShardBound(t *testing.T) {
	e := newTestEngine()
	e.SetOverloadConfig(&OverloadConfig{MaxPerShard: 2})
	release := postponeN(t, e, "ov-shard", 2)
	defer release()

	out := e.TriggerOutcome(NewConflictTrigger("ov-shard", new(int)), true, Options{})
	if out != OutcomeShed {
		t.Fatalf("outcome = %v, want OutcomeShed", out)
	}
	if got := e.Stats("ov-shard").Sheds(); got != 1 {
		t.Fatalf("Sheds = %d, want 1", got)
	}
	if n := e.IncidentCount(guard.KindOverloadShed); n != 1 {
		t.Fatalf("overload-shed incidents = %d, want 1", n)
	}
	// An unrelated breakpoint is not affected by the per-shard bound.
	if out := e.TriggerOutcome(NewConflictTrigger("ov-other", new(int)), true,
		Options{Timeout: time.Millisecond}); out != OutcomeTimeout {
		t.Fatalf("unrelated breakpoint outcome = %v, want OutcomeTimeout", out)
	}
}

func TestOverloadShedsAtGlobalHighWater(t *testing.T) {
	e := newTestEngine()
	e.SetOverloadConfig(&OverloadConfig{GlobalHighWater: 2})
	release := postponeN(t, e, "ov-global-a", 2)
	defer release()

	// The global bound sheds arrivals on a breakpoint with an empty
	// shard of its own.
	out := e.TriggerOutcome(NewConflictTrigger("ov-global-b", new(int)), true, Options{})
	if out != OutcomeShed {
		t.Fatalf("outcome = %v, want OutcomeShed", out)
	}
}

func TestOverloadDisabledByNilConfig(t *testing.T) {
	e := newTestEngine()
	e.SetOverloadConfig(&OverloadConfig{MaxPerShard: 1})
	release := postponeN(t, e, "ov-off", 1)
	defer release()
	e.SetOverloadConfig(nil)
	if out := e.TriggerOutcome(NewConflictTrigger("ov-off", new(int)), true,
		Options{Timeout: time.Millisecond}); out != OutcomeTimeout {
		t.Fatalf("outcome = %v after disabling overload, want OutcomeTimeout", out)
	}
}

func TestAdaptiveBudgetMath(t *testing.T) {
	cfg := &OverloadConfig{GlobalHighWater: 100, SoftWater: 50, MinBudget: time.Millisecond}
	req := 100 * time.Millisecond
	if got := cfg.budget(req, 10); got != req {
		t.Fatalf("below soft water: budget = %v, want %v", got, req)
	}
	if got := cfg.budget(req, 50); got != req {
		t.Fatalf("at soft water: budget = %v, want %v", got, req)
	}
	mid := cfg.budget(req, 75)
	if mid >= req || mid <= cfg.MinBudget {
		t.Fatalf("midway budget = %v, want strictly between %v and %v", mid, cfg.MinBudget, req)
	}
	if got := cfg.budget(req, 100); got != cfg.MinBudget {
		t.Fatalf("at high water: budget = %v, want floor %v", got, cfg.MinBudget)
	}
	if got := cfg.budget(req, 1000); got != cfg.MinBudget {
		t.Fatalf("far past high water: budget = %v, want floor %v", got, cfg.MinBudget)
	}
	// Requests already below the floor are granted unchanged.
	if got := cfg.budget(time.Microsecond, 99); got != time.Microsecond {
		t.Fatalf("tiny request: budget = %v, want %v", got, time.Microsecond)
	}
	var nilCfg *OverloadConfig
	if got := nilCfg.budget(req, 1000); got != req {
		t.Fatalf("nil config: budget = %v, want %v", got, req)
	}
}

func TestAdaptiveBudgetShrinksUnderPressure(t *testing.T) {
	e := newTestEngine()
	e.SetOverloadConfig(&OverloadConfig{GlobalHighWater: 3, SoftWater: 1, MinBudget: time.Millisecond})
	release := postponeN(t, e, "ov-adapt", 2)
	defer release()

	// Global population is 2, between soft (1) and high (3): a 10s
	// request must be granted a drastically smaller budget.
	start := time.Now()
	out := e.TriggerOutcome(NewConflictTrigger("ov-adapt-b", new(int)), true,
		Options{Timeout: 10 * time.Second})
	elapsed := time.Since(start)
	if out != OutcomeTimeout {
		t.Fatalf("outcome = %v, want OutcomeTimeout", out)
	}
	if elapsed > 6*time.Second {
		t.Fatalf("waited %v; adaptive budget did not shrink the 10s request", elapsed)
	}
}

func TestPostponedTotalAccounting(t *testing.T) {
	e := newTestEngine()
	if got := e.PostponedTotal(); got != 0 {
		t.Fatalf("initial PostponedTotal = %d", got)
	}
	release := postponeN(t, e, "ov-count", 3)
	if got := e.PostponedTotal(); got != 3 {
		t.Fatalf("PostponedTotal = %d, want 3", got)
	}
	release() // Reset path
	if got := e.PostponedTotal(); got != 0 {
		t.Fatalf("PostponedTotal after Reset = %d, want 0", got)
	}

	// Timeout path.
	e.TriggerHere(NewConflictTrigger("ov-count", new(int)), true, Options{Timeout: time.Millisecond})
	if got := e.PostponedTotal(); got != 0 {
		t.Fatalf("PostponedTotal after timeout = %d, want 0", got)
	}

	// Hit path.
	obj := new(int)
	done := make(chan struct{})
	go func() {
		e.TriggerHere(NewConflictTrigger("ov-count", obj), true, Options{Timeout: 5 * time.Second})
		close(done)
	}()
	for e.PostponedCount("ov-count") == 0 {
		time.Sleep(time.Millisecond)
	}
	if !e.TriggerHere(NewConflictTrigger("ov-count", obj), false, Options{}) {
		t.Fatal("expected hit")
	}
	<-done
	if got := e.PostponedTotal(); got != 0 {
		t.Fatalf("PostponedTotal after hit = %d, want 0", got)
	}
}

func TestPostponedWaitersSnapshot(t *testing.T) {
	e := newTestEngine()
	release := postponeN(t, e, "ov-snap", 1)
	defer release()
	var multiDone sync.WaitGroup
	multiDone.Add(1)
	go func() {
		defer multiDone.Done()
		e.TriggerHereMulti(NewConflictTrigger("ov-snap-multi", new(int)), 1, 3,
			Options{Timeout: 10 * time.Second})
	}()
	for e.MultiPostponedCount("ov-snap-multi") == 0 {
		time.Sleep(time.Millisecond)
	}

	byBP := map[string]PostponedWaiter{}
	for _, pw := range e.PostponedWaiters() {
		byBP[pw.Breakpoint] = pw
	}
	two, ok := byBP["ov-snap"]
	if !ok || two.Arity != 2 || two.Slot != 0 || two.GID == 0 {
		t.Fatalf("two-way snapshot = %+v, ok=%v", two, ok)
	}
	if two.Deadline.IsZero() {
		t.Fatal("two-way snapshot missing deadline")
	}
	multi, ok := byBP["ov-snap-multi"]
	if !ok || multi.Arity != 3 || multi.Slot != 1 {
		t.Fatalf("multi snapshot = %+v, ok=%v", multi, ok)
	}
	e.Reset()
	multiDone.Wait()
}

func TestForceReleaseIsExactlyOnce(t *testing.T) {
	e := newTestEngine()
	outCh := make(chan Outcome, 1)
	go func() {
		outCh <- e.TriggerOutcome(NewConflictTrigger("ov-force", new(int)), true,
			Options{Timeout: 10 * time.Second})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for e.PostponedCount("ov-force") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never postponed")
		}
		time.Sleep(time.Millisecond)
	}
	pws := e.PostponedWaiters()
	if len(pws) != 1 {
		t.Fatalf("PostponedWaiters = %v", pws)
	}
	gid := pws[0].GID

	if !e.ForceRelease("ov-force", gid, guard.KindCycleBreak, "test cycle break") {
		t.Fatal("first ForceRelease reported nothing released")
	}
	if out := <-outCh; out != OutcomeTimeout {
		t.Fatalf("released waiter outcome = %v, want OutcomeTimeout", out)
	}
	// Second release of the same goroutine must be a no-op: the shared
	// release path's state check makes forced release exactly-once.
	if e.ForceRelease("ov-force", gid, guard.KindCycleBreak, "double") {
		t.Fatal("second ForceRelease claimed to release again")
	}
	if n := e.IncidentCount(guard.KindCycleBreak); n != 1 {
		t.Fatalf("cycle-break incidents = %d, want 1", n)
	}
	if e.ForceRelease("no-such-bp", gid, guard.KindCycleBreak, "missing") {
		t.Fatal("ForceRelease on unknown breakpoint succeeded")
	}
}

func TestWatchdogAndForceReleaseShareOnePath(t *testing.T) {
	e := newTestEngine()
	e.SetInjector(wedgeInjector{})
	defer e.SetInjector(nil)
	outCh := make(chan Outcome, 1)
	go func() {
		outCh <- e.TriggerOutcome(NewConflictTrigger("ov-shared", new(int)), true,
			Options{Timeout: time.Millisecond})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for e.PostponedCount("ov-shared") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never postponed")
		}
		time.Sleep(time.Millisecond)
	}
	gid := e.PostponedWaiters()[0].GID

	// The watchdog scan releases the over-budget waiter through the
	// shared path...
	if n := e.watchdogScan(time.Now().Add(time.Hour), time.Millisecond); n != 1 {
		t.Fatalf("watchdogScan released %d, want 1", n)
	}
	if out := <-outCh; out != OutcomeTimeout {
		t.Fatalf("outcome = %v", out)
	}
	// ...so a racing supervisor release of the same goroutine finds
	// nothing left to release.
	if e.ForceRelease("ov-shared", gid, guard.KindCycleBreak, "racing release") {
		t.Fatal("ForceRelease double-released a watchdog-released waiter")
	}
	if n := e.IncidentCount(guard.KindCycleBreak); n != 0 {
		t.Fatalf("cycle-break incidents = %d, want 0", n)
	}
}

// wedgeInjector wedges every waiter's timer so only forced release can
// free it.
type wedgeInjector struct{}

func (wedgeInjector) Arrival(string, bool) guard.Fault { return guard.Fault{WedgeWait: true} }
