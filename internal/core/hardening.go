package core

import (
	"fmt"
	"time"

	"cbreak/internal/guard"
	"cbreak/internal/telemetry"
)

// This file threads the internal/guard hardening layer through the
// engine: panic isolation for user closures, per-breakpoint circuit
// breakers, the postponement watchdog, the incident log, and the fault
// injection hooks. The goal is the paper's production story made real:
// an enabled breakpoint must never be able to crash or stall the host
// program, no matter what its predicates and actions do.

// wedgedTimeout replaces a waiter's postponement timer when a WedgeWait
// fault simulates a broken timer; only a partner, Reset, or the
// watchdog can release such a waiter.
const wedgedTimeout = 24 * time.Hour

// injectorBox wraps the injector interface for atomic storage.
type injectorBox struct{ in guard.Injector }

// SetInjector installs a fault injector consulted on every trigger
// arrival (nil removes it). Production engines leave this unset and pay
// one atomic pointer load per arrival.
func (e *Engine) SetInjector(in guard.Injector) {
	if in == nil {
		e.injector.Store((*injectorBox)(nil))
		return
	}
	e.injector.Store(&injectorBox{in: in})
}

// faultFor asks the installed injector (if any) which faults to apply
// to this arrival.
func (e *Engine) faultFor(name string, first bool) guard.Fault {
	if b, _ := e.injector.Load().(*injectorBox); b != nil {
		return b.in.Arrival(name, first)
	}
	return guard.Fault{}
}

// SetIsolateActionPanics selects the action-panic policy. By default a
// panicking action is recorded and its partner released, but the panic
// is re-thrown to the caller — the action is the application's own
// guarded instruction, so its exceptions belong to the application.
// With isolation on, the panic is absorbed and the call returns
// OutcomePanic instead; use this when breakpoints ship in services that
// must never crash on instrumentation bugs.
func (e *Engine) SetIsolateActionPanics(v bool) { e.isolateActionPanics.Store(v) }

// IsolateActionPanics reports the current action-panic policy.
func (e *Engine) IsolateActionPanics() bool { return e.isolateActionPanics.Load() }

// Incidents returns the engine's retained hardening incidents (absorbed
// panics, stalls, watchdog releases, breaker transitions), oldest
// first.
func (e *Engine) Incidents() []guard.Incident { return e.incidents.Snapshot() }

// IncidentCount returns the monotonic total of incidents of one kind.
func (e *Engine) IncidentCount(k guard.IncidentKind) int64 { return e.incidents.Count(k) }

// IncidentCounts returns the monotonic incident totals keyed by kind
// label, omitting zero counts. Campaign trial records embed this map so
// campaign output doubles as a hardening observability artifact.
func (e *Engine) IncidentCounts() map[string]int64 {
	out := make(map[string]int64)
	for _, k := range guard.Kinds() {
		if n := e.incidents.Count(k); n > 0 {
			out[k.String()] = n
		}
	}
	return out
}

func (e *Engine) recordIncident(k guard.IncidentKind, name string, gid uint64, detail string) {
	in := guard.Incident{When: time.Now(), Kind: k, Breakpoint: name, GID: gid, Detail: detail}
	e.incidents.Record(in)
	e.bus.Publish(telemetry.Record{Kind: telemetry.RecordIncident, Incident: in})
}

// RecordIncident appends an incident to the engine's log on behalf of
// an external supervision layer (the wait-graph supervisor records its
// deadlock confirmations here, so one log tells the whole hardening
// story).
func (e *Engine) RecordIncident(k guard.IncidentKind, name string, gid uint64, detail string) {
	e.recordIncident(k, name, gid, detail)
}

// SetBreakerConfig enables per-breakpoint circuit breakers with the
// given configuration (zero fields take guard defaults), or disables
// them when cfg is nil. Existing breaker state is discarded either way:
// the engine's breaker epoch is bumped and each shard lazily rebuilds
// its breaker on next use (shard.breakerFor), so reconfiguration never
// stops the world.
func (e *Engine) SetBreakerConfig(cfg *guard.BreakerConfig) {
	if cfg == nil {
		e.breakerCfg.Store(nil)
	} else {
		c := *cfg
		e.breakerCfg.Store(&c)
	}
	e.brEpoch.Add(1)
}

// BreakerSnapshot returns the circuit-breaker state of the named
// breakpoint; ok is false when breakers are disabled or the breakpoint
// has not been seen since they were (re)configured.
func (e *Engine) BreakerSnapshot(name string) (guard.BreakerSnapshot, bool) {
	if e.breakerCfg.Load() == nil {
		return guard.BreakerSnapshot{}, false
	}
	s, ok := e.lookupShard(name)
	if !ok {
		return guard.BreakerSnapshot{}, false
	}
	epoch := e.brEpoch.Load()
	s.brMu.Lock()
	br, brEpoch := s.breaker, s.brEpoch
	s.brMu.Unlock()
	if br == nil || brEpoch != epoch {
		return guard.BreakerSnapshot{}, false
	}
	return br.Snapshot(), true
}

// reportBreaker feeds a postponement outcome into the breakpoint's
// breaker and logs any resulting state change.
func (e *Engine) reportBreaker(br *guard.Breaker, name string, st *BPStats, hit bool) {
	if br == nil {
		return
	}
	var tr guard.Transition
	if hit {
		tr = br.OnHit(time.Now())
	} else {
		tr = br.OnTimeout(time.Now())
	}
	e.noteBreakerTransition(name, st, br, tr)
}

func (e *Engine) noteBreakerTransition(name string, st *BPStats, br *guard.Breaker, tr guard.Transition) {
	switch tr {
	case guard.TransitionTripped, guard.TransitionReopened:
		st.trip()
		e.recordIncident(guard.KindBreakerTrip, name, 0, "circuit opened: "+br.Snapshot().String())
	case guard.TransitionProbe:
		e.recordIncident(guard.KindBreakerProbe, name, 0, "backoff expired; half-open probe admitted")
	case guard.TransitionRearmed:
		st.rearm()
		e.recordIncident(guard.KindBreakerRearm, name, 0, "probe hit; breaker closed")
	}
}

// protectBool runs a user predicate under recover.
func protectBool(fn func() bool) (ok bool, pv any, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			ok, pv, panicked = false, r, true
		}
	}()
	ok = fn()
	return
}

// evalLocal evaluates the effective local predicate (the trigger's
// PredicateLocal, the IgnoreFirst/Bound refinements, and ExtraLocal)
// with the user closures isolated: a panic is absorbed and reported
// instead of unwinding through the caller.
func (e *Engine) evalLocal(t Trigger, first bool, opts Options, st *BPStats, fault guard.Fault) (ok bool, pv any, panicked bool) {
	name := t.Name()
	ok, pv, panicked = protectBool(func() bool {
		if fault.PanicLocal {
			panic(guard.InjectedPanic{Breakpoint: name, Site: "local"})
		}
		return t.PredicateLocal()
	})
	if panicked || !ok {
		return
	}
	if opts.IgnoreFirst > 0 && st.sideArrivals(first) <= int64(opts.IgnoreFirst) {
		return false, nil, false
	}
	if opts.Bound > 0 && st.Hits() >= int64(opts.Bound) {
		return false, nil, false
	}
	if opts.ExtraLocal != nil {
		ok, pv, panicked = protectBool(func() bool {
			if fault.PanicExtra {
				panic(guard.InjectedPanic{Breakpoint: name, Site: "extra"})
			}
			return opts.ExtraLocal()
		})
	}
	return
}

// absorbPredPanic accounts for an absorbed predicate panic and runs the
// call's action (the application's instruction still belongs to the
// application even when the instrumentation broke).
func (e *Engine) absorbPredPanic(name, site string, gid uint64, st *BPStats, fault guard.Fault, pv any, action func()) Outcome {
	st.panicked()
	e.recordIncident(guard.KindPanic, name, gid, fmt.Sprintf("%s predicate panicked: %v", site, pv))
	e.execAction(name, gid, st, fault, 0, action)
	return OutcomePanic
}

// execAction runs a call-site action under the hardening policy:
// injected stalls and panics are applied, panics are recovered and
// logged, stalls past the handshake budget are logged, and the panic is
// re-thrown or absorbed per SetIsolateActionPanics. It reports whether
// an absorbed panic should turn the call's outcome into OutcomePanic.
func (e *Engine) execAction(name string, gid uint64, st *BPStats, fault guard.Fault, budget time.Duration, action func()) (panicked bool) {
	run := action
	if fault.PanicAction {
		run = func() {
			if action != nil {
				action()
			}
			panic(guard.InjectedPanic{Breakpoint: name, Site: "action"})
		}
	}
	if run == nil && fault.StallAction <= 0 {
		return false
	}
	start := time.Now()
	if fault.StallAction > 0 {
		time.Sleep(fault.StallAction)
	}
	var pv any
	if run != nil {
		_, pv, panicked = protectBool(func() bool { run(); return true })
	}
	if d := time.Since(start); budget > 0 && d > budget {
		e.recordIncident(guard.KindStall, name, gid,
			fmt.Sprintf("action ran %s, handshake budget %s", d.Round(time.Microsecond), budget))
	}
	if panicked {
		st.panicked()
		e.recordIncident(guard.KindPanic, name, gid, fmt.Sprintf("action panicked: %v", pv))
		if !e.isolateActionPanics.Load() {
			panic(pv)
		}
	}
	return panicked
}

// StartWatchdog starts the engine's background postponement monitor: a
// goroutine that every interval force-releases waiters stuck past their
// postponement budget (their requested timeout plus grace) — wedged
// handshakes, broken timers, leaked releases — and records each release
// in the incident log. Zero interval defaults to 50ms; grace defaults
// to one interval. Idempotent while running; stop with StopWatchdog.
func (e *Engine) StartWatchdog(interval, grace time.Duration) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	if grace <= 0 {
		grace = interval
	}
	e.wdMu.Lock()
	defer e.wdMu.Unlock()
	if e.wdStop != nil {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	e.wdStop, e.wdDone = stop, done
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-ticker.C:
				e.watchdogScan(now, grace)
			}
		}
	}()
}

// StopWatchdog stops the watchdog goroutine and waits for it to exit.
// No-op when the watchdog is not running.
func (e *Engine) StopWatchdog() {
	e.wdMu.Lock()
	stop, done := e.wdStop, e.wdDone
	e.wdStop, e.wdDone = nil, nil
	e.wdMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// WatchdogRunning reports whether the watchdog is active.
func (e *Engine) WatchdogRunning() bool {
	e.wdMu.Lock()
	defer e.wdMu.Unlock()
	return e.wdStop != nil
}

// watchdogScan force-releases every waiter postponed past its budget
// and returns how many it released. The scan walks the shard registry
// and locks one shard at a time, so a slow scan never stalls arrivals
// on unrelated breakpoints (no stop-the-world pass). Retired shards
// need no scan: retire() already released their waiters. Releases go
// through the engine's shared forced-release path (supervise.go), so a
// watchdog release and a wait-graph cycle break targeting the same
// goroutine can never double-release it.
func (e *Engine) watchdogScan(now time.Time, grace time.Duration) int {
	n := 0
	for _, s := range e.shards() {
		rel := e.forceReleaseShard(s, func(_ uint64, deadline time.Time) bool {
			return now.After(deadline.Add(grace))
		})
		for _, r := range rel {
			e.recordIncident(guard.KindWatchdogRelease, s.name, r.gid,
				fmt.Sprintf("force-released %s past postponement budget", now.Sub(r.deadline).Round(time.Millisecond)))
		}
		n += len(rel)
	}
	return n
}
