package core

import (
	"testing"
	"testing/quick"
)

func TestConflictGlobalSymmetric(t *testing.T) {
	// phi_t1t2 for conflicts (obj identity) must be symmetric.
	f := func(sameObj, sameName bool) bool {
		a := new(int)
		b := a
		if !sameObj {
			b = new(int)
		}
		nameB := "x"
		if !sameName {
			nameB = "y"
		}
		t1 := NewConflictTrigger("x", a)
		t2 := NewConflictTrigger(nameB, b)
		return t1.PredicateGlobal(t2) == t2.PredicateGlobal(t1) &&
			t1.PredicateGlobal(t2) == (sameObj && sameName)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockGlobalSymmetric(t *testing.T) {
	locks := []*int{new(int), new(int), new(int)}
	f := func(h1, w1, h2, w2 uint8) bool {
		a := NewDeadlockTrigger("d", locks[h1%3], locks[w1%3])
		b := NewDeadlockTrigger("d", locks[h2%3], locks[w2%3])
		want := a.Held == b.Want && a.Want == b.Held
		return a.PredicateGlobal(b) == want && b.PredicateGlobal(a) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicityGlobal(t *testing.T) {
	obj := new(int)
	a := NewAtomicityTrigger("at", obj)
	b := NewAtomicityTrigger("at", obj)
	c := NewAtomicityTrigger("at", new(int))
	if !a.PredicateGlobal(b) {
		t.Error("same object should match")
	}
	if a.PredicateGlobal(c) {
		t.Error("different objects should not match")
	}
	if !a.PredicateLocal() {
		t.Error("atomicity local predicate should be true")
	}
	if a.Name() != "at" {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestNotifyGlobal(t *testing.T) {
	cond := new(int)
	a := NewNotifyTrigger("nt", cond)
	b := NewNotifyTrigger("nt", cond)
	c := NewNotifyTrigger("nt", new(int))
	if !a.PredicateGlobal(b) || a.PredicateGlobal(c) {
		t.Error("notify trigger object identity broken")
	}
	if !a.PredicateLocal() || a.Name() != "nt" {
		t.Error("notify trigger local/name broken")
	}
}

func TestCrossTypeTriggersNeverMatch(t *testing.T) {
	obj := new(int)
	conflict := NewConflictTrigger("n", obj)
	deadlock := NewDeadlockTrigger("n", obj, obj)
	atomicity := NewAtomicityTrigger("n", obj)
	notify := NewNotifyTrigger("n", obj)
	pred := NewPredTrigger("n", obj, nil, nil)
	all := []Trigger{conflict, deadlock, atomicity, notify, pred}
	for i, a := range all {
		for j, b := range all {
			if i == j {
				continue
			}
			if a.PredicateGlobal(b) {
				t.Errorf("trigger %T matched %T", a, b)
			}
		}
	}
}

func TestPredTriggerNilPredicates(t *testing.T) {
	a := NewPredTrigger("p", 1, nil, nil)
	b := NewPredTrigger("p", 2, nil, nil)
	if !a.PredicateLocal() {
		t.Error("nil Local should be true")
	}
	if !a.PredicateGlobal(b) {
		t.Error("nil Global should match same name")
	}
	c := NewPredTrigger("q", 3, nil, nil)
	if a.PredicateGlobal(c) {
		t.Error("different names must not match")
	}
}

func TestGoroutineIDStableAndDistinct(t *testing.T) {
	id1 := goroutineID()
	id2 := goroutineID()
	if id1 == 0 {
		t.Fatal("goroutineID returned 0")
	}
	if id1 != id2 {
		t.Fatalf("goroutineID not stable within a goroutine: %d vs %d", id1, id2)
	}
	ch := make(chan uint64)
	go func() { ch <- goroutineID() }()
	if other := <-ch; other == id1 {
		t.Fatalf("two goroutines share id %d", other)
	}
}
