package core

import (
	"sync"
	"sync/atomic"

	"cbreak/internal/guard"
)

// This file implements the engine's sharded breakpoint registry. Every
// breakpoint name owns a bpState shard: its own mutex, postponed lists,
// statistics, circuit breaker, and event ring. Arrivals on distinct
// breakpoints therefore never contend on a shared lock — the property
// that lets breakpoints stay in hot production code the way the paper
// promises ("like assertions").
//
// Shards are resolved through a lock-free registry (an atomic pointer
// to a sync.Map). Reset swaps in a fresh registry and retires the old
// shards; retirement is the hinge of the handle lifecycle (handle.go):
// a retired shard accepts no new waiters, and cached handles detect the
// retired flag and transparently re-resolve.

// bpState is the per-breakpoint shard: all mutable engine state for one
// breakpoint name.
type bpState struct {
	name  string
	stats *BPStats
	eng   *Engine // owning engine, for global postponed accounting

	// disabled administratively bypasses this one breakpoint while the
	// engine stays enabled (Engine.SetBreakpointEnabled — the live
	// control plane's per-breakpoint toggle). Checked lock-free at the
	// top of every trigger path; a disabled arrival behaves exactly like
	// an engine-disabled one (action still runs, OutcomeDisabled). The
	// flag lives on the shard, so Reset discards it with the rest of the
	// breakpoint's state.
	disabled atomic.Bool

	// mu guards the postponed lists, the waiter state machines, and the
	// retired flag. It is the only lock on the rendezvous path, and it
	// is private to this breakpoint.
	mu        sync.Mutex
	retired   atomic.Bool // written under mu; read lock-free by handles
	postponed []*waiter
	multi     []*mwaiter

	// Circuit breaker cache, rebuilt lazily when the engine's breaker
	// epoch moves (SetBreakerConfig). Guarded by brMu, not mu, so
	// breaker admission never contends with rendezvous matching.
	brMu    sync.Mutex
	breaker *guard.Breaker
	brEpoch uint64

	// Overload-config cache, same lazy-epoch scheme as the breaker
	// (overload.go). Guarded by brMu.
	overload *OverloadConfig
	ovEpoch  uint64

	// events is this breakpoint's slice of the engine event history
	// (events.go). Its internal mutex is per-shard, so logging a hit on
	// one breakpoint never serializes against another.
	events eventRing
}

func newShard(e *Engine, name string) *bpState {
	return &bpState{name: name, stats: &BPStats{name: name}, eng: e}
}

// shard resolves (creating on first use) the live shard for name. The
// fast path is a single lock-free sync.Map load.
func (e *Engine) shard(name string) *bpState {
	reg := e.registry.Load()
	if v, ok := reg.Load(name); ok {
		return v.(*bpState)
	}
	v, _ := reg.LoadOrStore(name, newShard(e, name))
	return v.(*bpState)
}

// lookupShard returns the live shard for name without creating one.
func (e *Engine) lookupShard(name string) (*bpState, bool) {
	v, ok := e.registry.Load().Load(name)
	if !ok {
		return nil, false
	}
	return v.(*bpState), true
}

// shards snapshots the live shard set, unordered.
func (e *Engine) shards() []*bpState {
	var out []*bpState
	e.registry.Load().Range(func(_, v any) bool {
		out = append(out, v.(*bpState))
		return true
	})
	return out
}

// lockLive locks s, re-resolving through the registry when a Reset
// retired the shard between resolution and locking. Because retired is
// only set under the shard mutex (retire) and checked under it here, a
// waiter can never be parked on a retired shard — Reset can therefore
// guarantee that every postponed goroutine it is responsible for has
// been released.
func (e *Engine) lockLive(s *bpState) *bpState {
	for {
		s.mu.Lock()
		if !s.retired.Load() {
			return s
		}
		s.mu.Unlock()
		s = e.shard(s.name)
	}
}

// retire marks the shard dead and releases every postponed waiter with
// a timeout outcome. Called by Reset after the registry swap, so new
// arrivals already resolve to fresh shards.
func (s *bpState) retire() {
	s.mu.Lock()
	s.retired.Store(true)
	var released int64
	for _, w := range s.postponed {
		if w.state == waiterWaiting {
			w.state = waiterCancelled
			w.cancelOutcome = OutcomeTimeout
			close(w.cancelCh)
			released++
		}
	}
	for _, w := range s.multi {
		if w.state == waiterWaiting {
			w.state = waiterCancelled
			w.cancelOutcome = OutcomeTimeout
			close(w.cancelCh)
			released++
		}
	}
	s.postponed, s.multi = nil, nil
	s.eng.postponedTotal.Add(-released)
	s.mu.Unlock()
}

// breakerFor returns the shard's circuit breaker under the engine's
// current configuration, or nil when breakers are disabled. The breaker
// is rebuilt lazily after SetBreakerConfig bumps the epoch, which is
// how "existing breaker state is discarded" works without a global
// stop-the-world pass over all shards.
func (s *bpState) breakerFor(e *Engine) *guard.Breaker {
	cfg := e.breakerCfg.Load()
	if cfg == nil {
		return nil
	}
	epoch := e.brEpoch.Load()
	s.brMu.Lock()
	if s.breaker == nil || s.brEpoch != epoch {
		s.breaker = guard.NewBreaker(*cfg)
		s.brEpoch = epoch
	}
	br := s.breaker
	s.brMu.Unlock()
	return br
}

// releaseWaiterLocked cancels a postponed two-way waiter with the given
// outcome. Caller holds s.mu.
func (s *bpState) releaseWaiterLocked(w *waiter, out Outcome) {
	s.removeWaiter(w)
	w.state = waiterCancelled
	w.cancelOutcome = out
	close(w.cancelCh)
}

// releaseMultiWaiterLocked is releaseWaiterLocked for multi-way
// waiters. Caller holds s.mu.
func (s *bpState) releaseMultiWaiterLocked(w *mwaiter, out Outcome) {
	s.removeMultiWaiter(w)
	w.state = waiterCancelled
	w.cancelOutcome = out
	close(w.cancelCh)
}

func (s *bpState) removeWaiter(w *waiter) {
	ws := s.postponed
	for i, x := range ws {
		if x == w {
			ws[i] = ws[len(ws)-1]
			s.postponed = ws[:len(ws)-1]
			s.eng.postponedTotal.Add(-1)
			return
		}
	}
}

func (s *bpState) removeMultiWaiter(w *mwaiter) {
	ws := s.multi
	for i, x := range ws {
		if x == w {
			ws[i] = ws[len(ws)-1]
			s.multi = ws[:len(ws)-1]
			s.eng.postponedTotal.Add(-1)
			return
		}
	}
}
