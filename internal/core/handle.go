package core

import "sync/atomic"

// Breakpoint is a pre-resolved handle to one breakpoint: the shard
// lookup TriggerHere performs on every call is done once and cached, so
// a hot call site pays only the arrival itself. Obtain handles with
// Engine.Breakpoint (or cbreak.Register for the default engine),
// typically once per call site or per run, and keep them — they are
// safe for concurrent use by any number of goroutines.
//
// Handles survive Engine.Reset. Reset retires the shard a handle points
// at; the next operation on the handle detects this and transparently
// re-resolves a fresh shard under the same name. The staleness contract
// is exactly that of the string-keyed API: counters observed before the
// Reset (including BPStats pointers from Stats) belong to the old
// generation and stop updating, and operations racing with the Reset
// itself may land on either generation.
//
// The handle pins the breakpoint identity: the Name of triggers passed
// to Trigger/TriggerAnd/TriggerMulti is not consulted for shard
// resolution (the handle's name is authoritative for matching, stats,
// and events), so call sites should pass triggers built with the same
// name they registered.
type Breakpoint struct {
	e    *Engine
	name string
	s    atomic.Pointer[bpState]
}

// Breakpoint returns a handle to the named breakpoint, creating its
// shard if this is the first reference. Prefer handles over the
// string-keyed TriggerHere* calls on hot paths — see docs/USAGE.md.
func (e *Engine) Breakpoint(name string) *Breakpoint {
	b := &Breakpoint{e: e, name: name}
	b.s.Store(e.shard(name))
	return b
}

// state returns the handle's live shard, re-resolving after a Reset
// retired the cached one. The fast path is one atomic load and one
// atomic flag check.
func (b *Breakpoint) state() *bpState {
	s := b.s.Load()
	if s == nil || s.retired.Load() {
		s = b.e.shard(b.name)
		b.s.Store(s)
	}
	return s
}

// Name returns the breakpoint name the handle is bound to.
func (b *Breakpoint) Name() string { return b.name }

// Engine returns the engine the handle resolves against.
func (b *Breakpoint) Engine() *Engine { return b.e }

// Stats returns the breakpoint's live statistics record. After a Reset
// the returned pointer keeps the old generation's (frozen) counters;
// call Stats again for the fresh record.
func (b *Breakpoint) Stats() *BPStats { return b.state().stats }

// Trigger is Engine.TriggerHere through the handle: no per-call shard
// lookup, same semantics.
func (b *Breakpoint) Trigger(t Trigger, first bool, opts Options) bool {
	return b.e.trigger(b.state(), t, first, opts, nil) == OutcomeHit
}

// TriggerAnd is Engine.TriggerHereAnd through the handle.
func (b *Breakpoint) TriggerAnd(t Trigger, first bool, opts Options, action func()) bool {
	return b.e.trigger(b.state(), t, first, opts, action) == OutcomeHit
}

// TriggerOutcome is Engine.TriggerOutcome through the handle.
func (b *Breakpoint) TriggerOutcome(t Trigger, first bool, opts Options) Outcome {
	return b.e.trigger(b.state(), t, first, opts, nil)
}

// TriggerMulti is Engine.TriggerHereMulti through the handle.
func (b *Breakpoint) TriggerMulti(t Trigger, slot, arity int, opts Options) bool {
	return b.e.triggerMulti(b.state(), t, slot, arity, opts, nil) == OutcomeHit
}

// TriggerMultiAnd is Engine.TriggerHereMultiAnd through the handle.
func (b *Breakpoint) TriggerMultiAnd(t Trigger, slot, arity int, opts Options, action func()) bool {
	return b.e.triggerMulti(b.state(), t, slot, arity, opts, action) == OutcomeHit
}

// PostponedCount returns how many goroutines are currently postponed on
// this breakpoint (both sides, two-way waiters).
func (b *Breakpoint) PostponedCount() int {
	s := b.state()
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.postponed)
}
