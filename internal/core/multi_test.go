package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestThreeWayRendezvousOrdersAllSlots(t *testing.T) {
	e := newTestEngine()
	obj := new(int)
	var order []int
	var mu sync.Mutex
	record := func(slot int) func() {
		return func() {
			mu.Lock()
			order = append(order, slot)
			mu.Unlock()
		}
	}
	var hits atomic.Int32
	var wg sync.WaitGroup
	// Start in scrambled order; release must follow slot order.
	for _, slot := range []int{2, 0, 1} {
		slot := slot
		wg.Add(1)
		go func() {
			defer wg.Done()
			if e.TriggerHereMultiAnd(NewConflictTrigger("3way", obj), slot, 3,
				Options{Timeout: 2 * time.Second}, record(slot)) {
				hits.Add(1)
			}
		}()
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	if hits.Load() != 3 {
		t.Fatalf("hits = %d, want 3", hits.Load())
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("release order = %v, want [0 1 2]", order)
	}
	if got := e.Stats("3way").Hits(); got != 1 {
		t.Fatalf("group hits = %d, want 1", got)
	}
}

func TestMultiIncompleteGroupTimesOut(t *testing.T) {
	e := newTestEngine()
	obj := new(int)
	var wg sync.WaitGroup
	var hits atomic.Int32
	// Only 2 of 3 slots arrive.
	for _, slot := range []int{0, 1} {
		slot := slot
		wg.Add(1)
		go func() {
			defer wg.Done()
			if e.TriggerHereMulti(NewConflictTrigger("3way-short", obj), slot, 3,
				Options{Timeout: 50 * time.Millisecond}) {
				hits.Add(1)
			}
		}()
	}
	wg.Wait()
	if hits.Load() != 0 {
		t.Fatalf("incomplete group hit: %d", hits.Load())
	}
	if e.MultiPostponedCount("3way-short") != 0 {
		t.Fatal("timed-out waiters leaked")
	}
}

func TestMultiDifferentObjectsDoNotGroup(t *testing.T) {
	e := newTestEngine()
	a, b := new(int), new(int)
	var wg sync.WaitGroup
	var hits atomic.Int32
	objs := []any{a, a, b} // slot 2 disagrees
	for slot := 0; slot < 3; slot++ {
		slot := slot
		wg.Add(1)
		go func() {
			defer wg.Done()
			if e.TriggerHereMulti(NewConflictTrigger("3way-mixed", objs[slot]), slot, 3,
				Options{Timeout: 50 * time.Millisecond}) {
				hits.Add(1)
			}
		}()
	}
	wg.Wait()
	if hits.Load() != 0 {
		t.Fatalf("mixed-object group hit: %d", hits.Load())
	}
}

func TestMultiFourWay(t *testing.T) {
	e := newTestEngine()
	obj := new(int)
	var seq atomic.Int32
	var wrongOrder atomic.Bool
	var wg sync.WaitGroup
	for slot := 0; slot < 4; slot++ {
		slot := slot
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.TriggerHereMultiAnd(NewConflictTrigger("4way", obj), slot, 4,
				Options{Timeout: 2 * time.Second}, func() {
					if int(seq.Add(1))-1 != slot {
						wrongOrder.Store(true)
					}
				})
		}()
	}
	wg.Wait()
	if seq.Load() != 4 {
		t.Fatalf("only %d actions ran", seq.Load())
	}
	if wrongOrder.Load() {
		t.Fatal("actions ran out of slot order")
	}
}

func TestMultiInvalidArityAndSlot(t *testing.T) {
	e := newTestEngine()
	obj := new(int)
	ran := false
	if e.TriggerHereMultiAnd(NewConflictTrigger("bad", obj), 0, 1, Options{}, func() { ran = true }) {
		t.Fatal("arity 1 reported hit")
	}
	if !ran {
		t.Fatal("action skipped on invalid arity")
	}
	if e.TriggerHereMulti(NewConflictTrigger("bad", obj), 3, 3, Options{}) {
		t.Fatal("out-of-range slot reported hit")
	}
	if e.TriggerHereMulti(NewConflictTrigger("bad", obj), -1, 3, Options{}) {
		t.Fatal("negative slot reported hit")
	}
}

func TestMultiDisabledEngine(t *testing.T) {
	e := newTestEngine()
	e.SetEnabled(false)
	ran := false
	if e.TriggerHereMultiAnd(NewConflictTrigger("off", new(int)), 0, 3, Options{}, func() { ran = true }) {
		t.Fatal("disabled engine hit")
	}
	if !ran {
		t.Fatal("action skipped while disabled")
	}
}

func TestMultiResetReleasesWaiters(t *testing.T) {
	e := newTestEngine()
	obj := new(int)
	done := make(chan bool, 1)
	go func() {
		done <- e.TriggerHereMulti(NewConflictTrigger("multi-reset", obj), 0, 3,
			Options{Timeout: time.Hour})
	}()
	waitFor(t, "multi waiter postponed", func() bool {
		return e.MultiPostponedCount("multi-reset") == 1
	})
	e.Reset()
	select {
	case hit := <-done:
		if hit {
			t.Fatal("cancelled multi waiter reported hit")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Reset did not release the multi waiter")
	}
}

func TestFirstActionPanicStillReleasesPartner(t *testing.T) {
	e := newTestEngine()
	obj := new(int)
	released := make(chan bool, 1)
	go func() {
		released <- e.TriggerHere(NewConflictTrigger("panic-bp", obj), false,
			Options{Timeout: 5 * time.Second})
	}()
	waitFor(t, "second side postponed", func() bool { return e.PostponedCount("panic-bp") == 1 })
	func() {
		defer func() { recover() }()
		e.TriggerHereAnd(NewConflictTrigger("panic-bp", obj), true,
			Options{Timeout: 5 * time.Second}, func() { panic("guarded instruction threw") })
	}()
	select {
	case hit := <-released:
		if !hit {
			t.Fatal("partner not hit after panicking first action")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("partner stuck after first-action panic")
	}
}
