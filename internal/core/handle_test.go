package core

import (
	"sync"
	"testing"
	"time"
)

func TestHandleRendezvous(t *testing.T) {
	e := newTestEngine()
	bp := e.Breakpoint("h.rv")
	obj := new(int)
	var wg sync.WaitGroup
	hits := 0
	var mu sync.Mutex
	for _, first := range []bool{true, false} {
		wg.Add(1)
		go func(first bool) {
			defer wg.Done()
			if bp.Trigger(NewConflictTrigger("h.rv", obj), first, Options{}) {
				mu.Lock()
				hits++
				mu.Unlock()
			}
		}(first)
	}
	wg.Wait()
	if hits != 2 {
		t.Fatalf("handle rendezvous: %d sides reported a hit, want 2", hits)
	}
	if got := bp.Stats().Hits(); got != 1 {
		t.Fatalf("Stats().Hits() = %d, want 1", got)
	}
}

// TestHandleInteropWithStringAPI pins the compatibility contract: a
// handle arrival and a string-keyed arrival under the same name resolve
// to the same shard and match each other.
func TestHandleInteropWithStringAPI(t *testing.T) {
	e := newTestEngine()
	bp := e.Breakpoint("h.mixed")
	obj := new(int)
	done := make(chan bool, 1)
	go func() {
		done <- e.TriggerHere(NewConflictTrigger("h.mixed", obj), false, Options{})
	}()
	hit := bp.Trigger(NewConflictTrigger("h.mixed", obj), true, Options{})
	if other := <-done; !hit || !other {
		t.Fatalf("mixed-API rendezvous: handle=%v string=%v, want both true", hit, other)
	}
	if got := e.Stats("h.mixed").Hits(); got != 1 {
		t.Fatalf("Hits() = %d, want 1", got)
	}
}

func TestHandleMulti(t *testing.T) {
	e := newTestEngine()
	bp := e.Breakpoint("h.multi")
	obj := new(int)
	const arity = 3
	results := make(chan bool, arity)
	var wg sync.WaitGroup
	for slot := 0; slot < arity; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			results <- bp.TriggerMulti(NewConflictTrigger("h.multi", obj), slot, arity, Options{})
		}(slot)
	}
	wg.Wait()
	close(results)
	for hit := range results {
		if !hit {
			t.Fatal("multi-way handle rendezvous missed")
		}
	}
}

// TestHandleSurvivesReset pins the stale-handle contract: Reset retires
// the shard behind a handle, and the handle's next operation
// transparently re-resolves a fresh one. Old BPStats pointers freeze.
func TestHandleSurvivesReset(t *testing.T) {
	e := newTestEngine()
	e.OrderWindow = 0
	bp := e.Breakpoint("h.reset")
	obj := new(int)
	hitBoth := func() {
		done := make(chan bool, 1)
		go func() {
			done <- bp.Trigger(NewConflictTrigger("h.reset", obj), false, Options{})
		}()
		if !bp.Trigger(NewConflictTrigger("h.reset", obj), true, Options{}) || !<-done {
			t.Fatal("rendezvous through handle failed")
		}
	}
	hitBoth()
	old := bp.Stats()
	if old.Hits() != 1 {
		t.Fatalf("pre-Reset Hits() = %d, want 1", old.Hits())
	}

	e.Reset()

	fresh := bp.Stats()
	if fresh == old {
		t.Fatal("handle still resolves the retired generation's stats after Reset")
	}
	if fresh.Hits() != 0 {
		t.Fatalf("post-Reset Hits() = %d, want 0", fresh.Hits())
	}
	hitBoth()
	if fresh.Hits() != 1 || old.Hits() != 1 {
		t.Fatalf("post-Reset hit landed wrong: fresh=%d (want 1), old=%d (want 1 frozen)",
			fresh.Hits(), old.Hits())
	}
}

// TestResetReleasesHandleWaiter: a goroutine postponed through a handle
// is released promptly (with a miss) when Reset retires its shard, and
// the handle keeps working afterwards.
func TestResetReleasesHandleWaiter(t *testing.T) {
	e := newTestEngine()
	bp := e.Breakpoint("h.release")
	done := make(chan bool, 1)
	go func() {
		done <- bp.Trigger(NewConflictTrigger("h.release", new(int)), true,
			Options{Timeout: 10 * time.Second})
	}()
	waitFor(t, "postponed handle waiter", func() bool { return bp.PostponedCount() == 1 })
	e.Reset()
	select {
	case hit := <-done:
		if hit {
			t.Fatal("released waiter reported a hit")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Reset did not release the postponed handle waiter")
	}
	if bp.PostponedCount() != 0 {
		t.Fatalf("PostponedCount = %d after Reset, want 0", bp.PostponedCount())
	}
}
