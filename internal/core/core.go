// Package core implements concurrent breakpoints and the BTrigger
// mechanism from "Concurrent Breakpoints" (Park and Sen, UCB/EECS-2011-159,
// PPoPP 2012).
//
// A concurrent breakpoint is a tuple (l1, l2, phi): two program locations
// and a predicate over the joint local state of two threads. An execution
// triggers the breakpoint when two distinct goroutines are at l1 and l2
// with phi satisfied; the runtime then orders the first location's next
// instruction before the second's.
//
// The predicate phi decomposes as phi_t1 && phi_t2 && phi_t1t2, where
// phi_ti refers only to thread-local state of ti and phi_t1t2 relates the
// two. In this library a Trigger value carries the local state of one
// side: PredicateLocal evaluates phi_ti and PredicateGlobal evaluates
// phi_t1t2 against the other side's Trigger.
//
// BTrigger (Engine.TriggerHere) postpones a goroutine whose local
// predicate holds for up to a timeout, waiting for a partner whose global
// predicate matches. On a match the breakpoint is hit and the two
// goroutines are released in breakpoint order; on timeout the goroutine
// simply continues, so breakpoints can never deadlock the program.
package core

import "time"

// Trigger is one side of a concurrent breakpoint. A Trigger encapsulates
// the local state of the goroutine that reached the breakpoint location,
// exactly like the abstract BTrigger class of the paper's Java library.
//
// Two Trigger values belong to the same breakpoint when they share a
// Name. PredicateLocal is phi_ti over this side's local state;
// PredicateGlobal is phi_t1t2 evaluated against the partner side.
type Trigger interface {
	// Name identifies the breakpoint. Two Trigger instances with the
	// same name are part of the same concurrent breakpoint.
	Name() string

	// PredicateLocal reports whether this side's local predicate holds.
	// A goroutine is only postponed when PredicateLocal returns true.
	PredicateLocal() bool

	// PredicateGlobal reports whether the joint predicate holds against
	// the other side of the breakpoint. It is called with the partner's
	// Trigger once both sides have arrived.
	PredicateGlobal(other Trigger) bool
}

// Options refine a TriggerHere call site. The zero value uses the
// engine's defaults. IgnoreFirst and Bound implement the local-predicate
// refinements of section 6.3 of the paper; ExtraLocal attaches an
// arbitrary extra conjunct to the local predicate (for example a
// lock-class-held check).
type Options struct {
	// Timeout bounds the postponement (the pause time T of the paper).
	// Zero means the engine's DefaultTimeout.
	Timeout time.Duration

	// IgnoreFirst skips this side's first n arrivals whose local
	// predicate would otherwise hold (paper: thisBreakpointHit > n).
	// The count is kept per (breakpoint, side) in the engine, so it
	// persists across Trigger instances.
	IgnoreFirst int

	// Bound stops the breakpoint after it has been hit n times
	// (paper: triggers < bound). Zero means unbounded.
	Bound int

	// ExtraLocal, when non-nil, is and-ed into the local predicate.
	ExtraLocal func() bool
}

// Outcome describes what happened at a TriggerHere call.
type Outcome int

const (
	// OutcomeDisabled: the engine is disabled; the call was a no-op.
	OutcomeDisabled Outcome = iota
	// OutcomeLocalFalse: the local predicate did not hold.
	OutcomeLocalFalse
	// OutcomeTimeout: the goroutine was postponed but no partner
	// arrived within the timeout.
	OutcomeTimeout
	// OutcomeHit: the breakpoint was reached and ordered.
	OutcomeHit
	// OutcomePanic: a user closure (predicate or action) panicked; the
	// panic was absorbed by the hardening layer, any postponed partner
	// was released, and the incident was logged.
	OutcomePanic
	// OutcomeShed: the breakpoint's circuit breaker is open; the
	// arrival passed straight through without postponement.
	OutcomeShed
)

// String returns a short human-readable form of the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeDisabled:
		return "disabled"
	case OutcomeLocalFalse:
		return "local-false"
	case OutcomeTimeout:
		return "timeout"
	case OutcomeHit:
		return "hit"
	case OutcomePanic:
		return "panic"
	case OutcomeShed:
		return "shed"
	default:
		return "unknown"
	}
}
