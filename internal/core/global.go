package core

import "time"

// defaultEngine is the process-wide engine used by the package-level
// helpers and the public cbreak facade. Breakpoints inserted into
// application code normally go through this engine so that they behave
// like global assertions that can be switched on and off.
var defaultEngine = NewEngine()

// Default returns the process-wide engine.
func Default() *Engine { return defaultEngine }

// SetEnabled enables or disables the default engine.
func SetEnabled(v bool) { defaultEngine.SetEnabled(v) }

// Enabled reports whether the default engine is enabled.
func Enabled() bool { return defaultEngine.Enabled() }

// Reset clears the default engine's postponed set and statistics.
func Reset() { defaultEngine.Reset() }

// TriggerHere calls Engine.TriggerHere on the default engine with the
// given pause timeout (zero means the engine default), mirroring the
// paper's triggerHere(isFirstAction, timeoutInMS) API.
func TriggerHere(t Trigger, first bool, timeout time.Duration) bool {
	return defaultEngine.TriggerHere(t, first, Options{Timeout: timeout})
}

// TriggerHereOpts calls Engine.TriggerHere on the default engine with
// full options.
func TriggerHereOpts(t Trigger, first bool, opts Options) bool {
	return defaultEngine.TriggerHere(t, first, opts)
}

// TriggerHereAnd calls Engine.TriggerHereAnd on the default engine.
func TriggerHereAnd(t Trigger, first bool, opts Options, action func()) bool {
	return defaultEngine.TriggerHereAnd(t, first, opts, action)
}
