package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cbreak/internal/guard"
	"cbreak/internal/telemetry"
)

// hitPair rendezvouses one two-way breakpoint hit on e and returns both
// outcomes.
func hitPair(t *testing.T, e *Engine, name string) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.TriggerHere(NewPredTrigger(name, nil, nil, nil), true, Options{Timeout: 2 * time.Second})
	}()
	if !e.TriggerHere(NewPredTrigger(name, nil, nil, nil), false, Options{Timeout: 2 * time.Second}) {
		t.Fatalf("%s: second side missed", name)
	}
	wg.Wait()
}

type recordingTap struct {
	mu   sync.Mutex
	recs []telemetry.Record
}

func (r *recordingTap) Deliver(rec telemetry.Record) {
	r.mu.Lock()
	r.recs = append(r.recs, rec)
	r.mu.Unlock()
}

func (r *recordingTap) byKind(k telemetry.RecordKind) []telemetry.Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []telemetry.Record
	for _, rec := range r.recs {
		if rec.Kind == k {
			out = append(out, rec)
		}
	}
	return out
}

func TestBusCarriesEventsAndIncidents(t *testing.T) {
	e := NewEngine()
	tap := &recordingTap{}
	h := e.Bus().AttachTap(tap)
	defer h.Detach()

	hitPair(t, e, "bus.bp")
	e.RecordIncident(guard.KindStall, "bus.bp", 0, "test incident")

	evs := tap.byKind(telemetry.RecordEvent)
	if len(evs) == 0 {
		t.Fatal("no events on the bus")
	}
	var sawHit bool
	for _, rec := range evs {
		if rec.Event.Kind == EventHit && rec.Event.Breakpoint == "bus.bp" {
			sawHit = true
		}
	}
	if !sawHit {
		t.Error("bus missed the hit event")
	}
	// Bus events and the in-memory ring must agree (same emission site).
	if ringN, busN := len(e.Events()), len(evs); ringN != busN {
		t.Errorf("ring has %d events, bus saw %d", ringN, busN)
	}

	ins := tap.byKind(telemetry.RecordIncident)
	if len(ins) != 1 || ins[0].Incident.Kind != guard.KindStall {
		t.Fatalf("bus incidents = %+v, want one stall", ins)
	}
}

// recordingSink implements DurableSink.
type recordingSink struct {
	mu        sync.Mutex
	events    []Event
	incidents []guard.Incident
}

func (s *recordingSink) RecordEvent(ev Event) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

func (s *recordingSink) RecordIncident(in guard.Incident) {
	s.mu.Lock()
	s.incidents = append(s.incidents, in)
	s.mu.Unlock()
}

func TestDurableSinkRidesTheBus(t *testing.T) {
	e := NewEngine()
	if e.DurableSinkInstalled() {
		t.Fatal("fresh engine reports a sink")
	}
	sink := &recordingSink{}
	e.SetDurableSink(sink)
	if !e.DurableSinkInstalled() {
		t.Fatal("sink not reported installed")
	}

	hitPair(t, e, "durable.bp")
	e.RecordIncident(guard.KindPanic, "durable.bp", 0, "boom")

	sink.mu.Lock()
	nev, nin := len(sink.events), len(sink.incidents)
	sink.mu.Unlock()
	if nev == 0 || nin != 1 {
		t.Fatalf("sink saw %d events, %d incidents", nev, nin)
	}

	// Removing the sink detaches the tap.
	e.SetDurableSink(nil)
	if e.DurableSinkInstalled() {
		t.Fatal("sink still reported after removal")
	}
	hitPair(t, e, "durable.bp2")
	sink.mu.Lock()
	after := len(sink.events)
	sink.mu.Unlock()
	if after != nev {
		t.Fatalf("removed sink still receiving events: %d -> %d", nev, after)
	}

	// Replacing swaps in one tap, not two.
	s2 := &recordingSink{}
	e.SetDurableSink(&recordingSink{})
	e.SetDurableSink(s2)
	hitPair(t, e, "durable.bp3")
	s2.mu.Lock()
	got := 0
	for _, ev := range s2.events {
		if ev.Kind == EventHit {
			got++
		}
	}
	s2.mu.Unlock()
	if got != 1 {
		t.Fatalf("replacement sink saw %d hit events, want 1", got)
	}
}

func TestSetBreakpointEnabled(t *testing.T) {
	e := NewEngine()
	const name = "toggle.bp"
	if !e.BreakpointEnabled(name) {
		t.Fatal("unseen breakpoint should report enabled")
	}

	// Pre-disable before first arrival.
	e.SetBreakpointEnabled(name, false)
	if e.BreakpointEnabled(name) {
		t.Fatal("breakpoint still enabled after disable")
	}
	ran := false
	out := e.TriggerOutcome(NewPredTrigger(name, nil, nil, nil), true, Options{Timeout: 10 * time.Millisecond})
	if out != OutcomeDisabled {
		t.Fatalf("disabled breakpoint outcome = %v, want OutcomeDisabled", out)
	}
	// Actions still run on the disabled path, exactly like an
	// engine-wide disable.
	if e.TriggerHereAnd(NewPredTrigger(name, nil, nil, nil), true, Options{}, func() { ran = true }) {
		t.Fatal("disabled breakpoint reported a hit")
	}
	if !ran {
		t.Fatal("action skipped on disabled breakpoint")
	}
	// Multi-way honors the flag too.
	if e.TriggerHereMulti(NewPredTrigger(name, nil, nil, nil), 0, 2, Options{Timeout: time.Millisecond}) {
		t.Fatal("disabled multi-way arrival hit")
	}
	if got := e.Stats(name).Arrivals(); got != 0 {
		t.Fatalf("disabled arrivals counted: %d", got)
	}

	// Other breakpoints are unaffected.
	hitPair(t, e, "toggle.other")

	// Re-enable: the breakpoint works again.
	e.SetBreakpointEnabled(name, true)
	if !e.BreakpointEnabled(name) {
		t.Fatal("breakpoint still disabled after enable")
	}
	hitPair(t, e, name)
	if e.Stats(name).Hits() != 1 {
		t.Fatal("re-enabled breakpoint did not hit")
	}

	// Reset discards the flag with the rest of the shard state.
	e.SetBreakpointEnabled(name, false)
	e.Reset()
	if !e.BreakpointEnabled(name) {
		t.Fatal("disable survived Reset")
	}
}

func TestBreakpointDisabledOnHandle(t *testing.T) {
	e := NewEngine()
	const name = "toggle.handle"
	bp := e.Breakpoint(name)
	e.SetBreakpointEnabled(name, false)
	if bp.Trigger(NewPredTrigger(name, nil, nil, nil), true, Options{Timeout: time.Millisecond}) {
		t.Fatal("handle arrival hit a disabled breakpoint")
	}
	if e.Stats(name).Arrivals() != 0 {
		t.Fatal("handle arrival on disabled breakpoint was counted")
	}
}

func TestRegisterMetricsExposesEngineState(t *testing.T) {
	e := NewEngine()
	e.SetOverloadConfig(&OverloadConfig{GlobalHighWater: 100, SoftWater: 40, MaxPerShard: 10})
	reg := telemetry.NewRegistry()
	e.RegisterMetrics(reg)
	reg.WireBus("engine", e.Bus())

	hitPair(t, e, "metrics.bp")
	// One timed-out postponement, to populate the wait histogram.
	e.TriggerOutcome(NewPredTrigger("metrics.slow", nil, nil, nil), true, Options{Timeout: 2 * time.Millisecond})
	e.RecordIncident(guard.KindStall, "metrics.bp", 0, "x")
	e.SetBreakpointEnabled("metrics.off", false)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"cbreak_engine_enabled 1",
		"cbreak_postponed_waiters 0",
		"cbreak_overload_global_high_water 100",
		"cbreak_overload_soft_water 40",
		"cbreak_overload_max_per_shard 10",
		`cbreak_bp_hits_total{breakpoint="metrics.bp"} 1`,
		`cbreak_bp_arrivals_total{breakpoint="metrics.bp"} 2`,
		`cbreak_bp_timeouts_total{breakpoint="metrics.slow"} 1`,
		`cbreak_bp_enabled{breakpoint="metrics.off"} 0`,
		`cbreak_bp_enabled{breakpoint="metrics.bp"} 1`,
		`cbreak_bp_wait_seconds_count{breakpoint="metrics.slow"} 1`,
		`cbreak_incidents_total{kind="stall"} 1`,
		`cbreak_bus_records_total{kind="guard-incident"} 1`,
		`cbreak_bp_last_hit_timestamp_seconds{breakpoint="metrics.bp"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}

func TestSnapshotWaitHistogram(t *testing.T) {
	e := NewEngine()
	e.TriggerOutcome(NewPredTrigger("hist.bp", nil, nil, nil), true, Options{Timeout: 2 * time.Millisecond})
	snap := e.Stats("hist.bp").Snapshot()
	if snap.WaitCount != 1 {
		t.Fatalf("WaitCount = %d, want 1", snap.WaitCount)
	}
	if len(snap.WaitHist) != telemetry.NumWaitBuckets {
		t.Fatalf("WaitHist has %d buckets, want %d", len(snap.WaitHist), telemetry.NumWaitBuckets)
	}
	var total int64
	for _, n := range snap.WaitHist {
		total += n
	}
	if total != 1 {
		t.Fatalf("bucketed observations = %d, want 1 (wait ~2ms fits the bounds)", total)
	}
}
