package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cbreak/internal/guard"
)

// TestShardLifecycleStress hammers the shard lifecycle from every
// direction at once: concurrent two-way and multi-way arrivals across
// many breakpoints, Reset swapping registries out from under them,
// SetBreakerConfig flipping breakers on and off (epoch churn), the
// watchdog scanning shards, handles re-resolving across generations,
// and readers walking stats, events, and breaker snapshots. Run under
// -race in CI, it pins the new concurrency contract; without -race it
// is still a decent smoke for lost wakeups (every arrival must return).
func TestShardLifecycleStress(t *testing.T) {
	e := NewEngine()
	e.DefaultTimeout = 2 * time.Millisecond
	e.OrderWindow = 0
	e.StartWatchdog(5*time.Millisecond, 5*time.Millisecond)
	defer e.StopWatchdog()

	const (
		nBreakpoints = 16
		nTriggerers  = 8
		iterations   = 300
	)
	names := make([]string, nBreakpoints)
	objs := make([]*int, nBreakpoints)
	for i := range names {
		names[i] = fmt.Sprintf("stress.bp%d", i)
		objs[i] = new(int)
	}

	stop := make(chan struct{})
	var trigWG, churnWG sync.WaitGroup

	// Trigger hammers: mixed string-keyed and handle arrivals, both
	// sides, so rendezvous, timeouts, and Reset releases all happen.
	for g := 0; g < nTriggerers; g++ {
		trigWG.Add(1)
		go func(g int) {
			defer trigWG.Done()
			bp := e.Breakpoint(names[g%nBreakpoints])
			for i := 0; i < iterations; i++ {
				k := (g + i) % nBreakpoints
				tr := NewConflictTrigger(names[k], objs[k])
				switch i % 3 {
				case 0:
					e.TriggerHere(tr, g%2 == 0, Options{})
				case 1:
					bp.Trigger(NewConflictTrigger(bp.Name(), objs[g%nBreakpoints]), i%2 == 0, Options{})
				case 2:
					e.TriggerHereMulti(tr, g%3, 3, Options{})
				}
			}
		}(g)
	}

	// Lifecycle churn: Reset and breaker reconfiguration racing the
	// arrivals above.
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		cfg := guard.DefaultBreakerConfig()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				e.Reset()
			case 1:
				e.SetBreakerConfig(&cfg)
			case 2:
				e.SetBreakerConfig(nil)
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	// Readers: every observability surface, concurrently.
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			e.SnapshotAll()
			e.Events()
			e.IncidentCounts()
			for _, n := range names {
				e.PostponedCount(n)
				e.MultiPostponedCount(n)
				e.BreakerSnapshot(n)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// The triggerers are the bounded part; a generous deadline bounds
	// the whole test so a lost wakeup fails instead of hanging.
	done := make(chan struct{})
	go func() { trigWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress triggerers did not finish: lost wakeup or deadlock in shard lifecycle")
	}
	close(stop)
	churnWG.Wait()
}
