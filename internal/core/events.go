package core

import (
	"sort"
	"sync"
	"time"

	"cbreak/internal/telemetry"
)

// This file adds observability to the engine: a bounded event log of
// breakpoint activity and a hit callback. The paper's example trigger
// classes print "Conflict" / "Deadlock" from predicateGlobal when a
// breakpoint is reached (Figures 6 and 8); OnHit is the structured
// version of that hook, and the event log gives a debugger the recent
// breakpoint history of a run.
//
// The log is sharded with the rest of the engine: each breakpoint's
// shard owns a bounded ring, so recording an event contends only with
// readers and other arrivals of the same breakpoint — the hit path
// takes no second global mutex. Events carry a global sequence number
// and Events() merges the per-shard rings in sequence order.
//
// The event shape itself lives in internal/telemetry (the typed
// telemetry core sits below this package in the import graph so that
// every layer can publish records); the names are aliased here so the
// engine's historical API — core.Event, core.EventHit — is unchanged.

// EventKind classifies an engine event. It is internal/telemetry's
// EventKind; see that package for the canonical definition.
type EventKind = telemetry.EventKind

// Engine event kinds, re-exported from internal/telemetry.
const (
	// EventArrived: a goroutine called TriggerHere.
	EventArrived = telemetry.EventArrived
	// EventPostponed: the goroutine entered the postponed set.
	EventPostponed = telemetry.EventPostponed
	// EventHit: a breakpoint rendezvoused.
	EventHit = telemetry.EventHit
	// EventTimeout: a postponement expired without a partner.
	EventTimeout = telemetry.EventTimeout
)

// Event is one entry of the engine's event log (telemetry.Event: the
// same value flows to the shard ring, the telemetry bus, and every bus
// consumer — durable journal sink, NDJSON stream, metric counters).
type Event = telemetry.Event

// eventRing is one shard's bounded ring of engine events.
type eventRing struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

// eventLogCapacity bounds each breakpoint's retained history.
const eventLogCapacity = 256

func (l *eventRing) add(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.buf == nil {
		l.buf = make([]Event, eventLogCapacity)
	}
	l.buf[l.next] = ev
	l.next = (l.next + 1) % len(l.buf)
	if l.next == 0 {
		l.full = true
	}
}

func (l *eventRing) snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.buf == nil {
		return nil
	}
	var out []Event
	if l.full {
		out = append(out, l.buf[l.next:]...)
	}
	out = append(out, l.buf[:l.next]...)
	return out
}

// onHitBox wraps the hit callback for atomic storage on the engine.
type onHitBox struct {
	f func(name string, arriving, postponed Trigger)
}

// SetOnHit installs a callback invoked (synchronously, on the arriving
// goroutine) whenever a breakpoint is hit, with both sides' triggers —
// the structured analog of the paper's "Conflict"/"Deadlock" println.
// Pass nil to remove.
func (e *Engine) SetOnHit(f func(name string, arriving, postponed Trigger)) {
	if f == nil {
		e.onHit.Store(nil)
		return
	}
	e.onHit.Store(&onHitBox{f: f})
}

func (e *Engine) emitHit(name string, arriving, postponed Trigger) {
	if b := e.onHit.Load(); b != nil {
		b.f(name, arriving, postponed)
	}
}

// Events returns the engine's recent breakpoint events, oldest first
// (bounded ring of 256 per breakpoint), merged across breakpoints in
// global sequence order.
func (e *Engine) Events() []Event {
	var out []Event
	for _, s := range e.shards() {
		out = append(out, s.events.snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// logEvent appends to the shard's ring (cheap enough to do
// unconditionally; the engine is only active when breakpoints are
// enabled) and publishes the same value on the engine's telemetry bus —
// the single fan-out behind the durable journal sink, live NDJSON
// streams, and stream metric counters. With no bus listeners the
// publish is one atomic load.
func (e *Engine) logEvent(s *bpState, kind EventKind, gid uint64, first bool) {
	ev := Event{Seq: e.eventSeq.Add(1), When: time.Now(),
		Kind: kind, Breakpoint: s.name, GID: gid, First: first}
	s.events.add(ev)
	e.bus.Publish(telemetry.Record{Kind: telemetry.RecordEvent, Event: ev})
}
