package core

import (
	"fmt"
	"sync"
	"time"
)

// This file adds observability to the engine: a bounded event log of
// breakpoint activity and a hit callback. The paper's example trigger
// classes print "Conflict" / "Deadlock" from predicateGlobal when a
// breakpoint is reached (Figures 6 and 8); OnHit is the structured
// version of that hook, and the event log gives a debugger the recent
// breakpoint history of a run.

// EventKind classifies an engine event.
type EventKind int

// Engine event kinds.
const (
	// EventArrived: a goroutine called TriggerHere.
	EventArrived EventKind = iota
	// EventPostponed: the goroutine entered the postponed set.
	EventPostponed
	// EventHit: a breakpoint rendezvoused.
	EventHit
	// EventTimeout: a postponement expired without a partner.
	EventTimeout
)

// String returns the event-kind label.
func (k EventKind) String() string {
	switch k {
	case EventArrived:
		return "arrived"
	case EventPostponed:
		return "postponed"
	case EventHit:
		return "hit"
	case EventTimeout:
		return "timeout"
	default:
		return "unknown"
	}
}

// Event is one entry of the engine's event log.
type Event struct {
	// When is the event timestamp.
	When time.Time
	// Kind classifies the event.
	Kind EventKind
	// Breakpoint is the breakpoint name.
	Breakpoint string
	// GID is the goroutine involved.
	GID uint64
	// First reports the breakpoint side.
	First bool
}

// String formats the event for logs.
func (ev Event) String() string {
	side := "second"
	if ev.First {
		side = "first"
	}
	return fmt.Sprintf("%s %s g%d (%s side)", ev.Breakpoint, ev.Kind, ev.GID, side)
}

// eventLog is a bounded ring of engine events.
type eventLog struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	onHit func(name string, t1, t2 Trigger)
}

const eventLogCapacity = 256

func (l *eventLog) add(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.buf == nil {
		l.buf = make([]Event, eventLogCapacity)
	}
	l.buf[l.next] = ev
	l.next = (l.next + 1) % len(l.buf)
	if l.next == 0 {
		l.full = true
	}
}

func (l *eventLog) snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.buf == nil {
		return nil
	}
	var out []Event
	if l.full {
		out = append(out, l.buf[l.next:]...)
	}
	out = append(out, l.buf[:l.next]...)
	return out
}

// SetOnHit installs a callback invoked (synchronously, on the arriving
// goroutine) whenever a breakpoint is hit, with both sides' triggers —
// the structured analog of the paper's "Conflict"/"Deadlock" println.
// Pass nil to remove.
func (e *Engine) SetOnHit(f func(name string, arriving, postponed Trigger)) {
	e.events.mu.Lock()
	e.events.onHit = f
	e.events.mu.Unlock()
}

func (e *Engine) emitHit(name string, arriving, postponed Trigger) {
	e.events.mu.Lock()
	f := e.events.onHit
	e.events.mu.Unlock()
	if f != nil {
		f(name, arriving, postponed)
	}
}

// Events returns the engine's recent breakpoint events, oldest first
// (bounded ring of 256).
func (e *Engine) Events() []Event { return e.events.snapshot() }

// logEvent appends to the ring (cheap enough to do unconditionally; the
// engine is only active when breakpoints are enabled).
func (e *Engine) logEvent(kind EventKind, name string, gid uint64, first bool) {
	e.events.add(Event{When: time.Now(), Kind: kind, Breakpoint: name, GID: gid, First: first})
}
