package core

import (
	"fmt"
	"time"
)

// This file is the engine's overload-protection layer. Postponement is
// the engine's only unbounded resource: every postponed goroutine pins
// a waiter, a timer, and — in the deadlock reproductions — possibly an
// application lock. Under a stampede (a hot breakpoint in a busy
// service, a predicate that suddenly matches everything) the postponed
// population must not grow without bound. The layer bounds it three
// ways, all off by default:
//
//   - a per-shard cap on one breakpoint's postponed population,
//   - a global high-water mark above which arrivals are shed outright
//     (OutcomeShed, mirroring the circuit breaker's degradation path),
//   - an adaptive postponement budget: between the soft water mark and
//     the high-water mark, granted budgets shrink linearly toward a
//     floor, so the backlog drains faster the fuller it gets.
//
// Configuration uses the breaker's epoch plumbing (shard.breakerFor):
// SetOverloadConfig stores the config behind an atomic pointer and
// bumps an epoch; each shard revalidates its cached copy lazily on
// next use, so reconfiguration never stops the world.

// OverloadConfig bounds the engine's postponed populations. Zero-value
// fields disable the corresponding bound.
type OverloadConfig struct {
	// MaxPerShard caps one breakpoint's postponed population (two-way
	// plus multi-way waiters). An arrival that would exceed it is shed.
	// 0 disables the per-shard bound.
	MaxPerShard int

	// GlobalHighWater caps the engine-wide postponed population; at or
	// above it new arrivals are shed instead of postponed. 0 disables
	// the global bound.
	GlobalHighWater int

	// SoftWater is the global population where adaptive budgeting
	// begins: between SoftWater and GlobalHighWater the granted
	// postponement budget shrinks linearly from the requested timeout
	// down to MinBudget. 0 defaults to GlobalHighWater/2.
	SoftWater int

	// MinBudget floors the adaptive budget. 0 defaults to 1ms.
	MinBudget time.Duration
}

// defaultMinBudget floors adaptive postponement budgets when the
// config leaves MinBudget zero.
const defaultMinBudget = time.Millisecond

// SetOverloadConfig installs (or, with nil, removes) the engine's
// overload bounds. Reconfiguration follows the breaker's epoch scheme:
// shards revalidate their cached config lazily, so this never stops
// the world.
func (e *Engine) SetOverloadConfig(cfg *OverloadConfig) {
	if cfg == nil {
		e.overloadCfg.Store(nil)
	} else {
		c := *cfg
		e.overloadCfg.Store(&c)
	}
	e.ovEpoch.Add(1)
}

// PostponedTotal returns the engine-wide count of currently postponed
// goroutines (two-way and multi-way, all breakpoints).
func (e *Engine) PostponedTotal() int64 { return e.postponedTotal.Load() }

// Overload returns a copy of the engine's installed overload bounds;
// ok is false when overload protection is disabled. External layers
// that degrade alongside the engine — notably the socket servers'
// accept-loop shedding — read the same water marks from here instead
// of duplicating the configuration.
func (e *Engine) Overload() (OverloadConfig, bool) {
	cfg := e.overloadCfg.Load()
	if cfg == nil {
		return OverloadConfig{}, false
	}
	return *cfg, true
}

// overloadFor returns the shard's cached overload config under the
// engine's current epoch, or nil when overload protection is disabled.
// Same lazy-rebuild scheme as breakerFor.
func (s *bpState) overloadFor(e *Engine) *OverloadConfig {
	cfg := e.overloadCfg.Load()
	if cfg == nil {
		return nil
	}
	epoch := e.ovEpoch.Load()
	s.brMu.Lock()
	if s.overload == nil || s.ovEpoch != epoch {
		s.overload = cfg
		s.ovEpoch = epoch
	}
	cfg = s.overload
	s.brMu.Unlock()
	return cfg
}

// shedReason reports whether an arrival must be shed instead of
// postponed, given the shard's current postponed population and the
// engine-wide total, and if so why. A nil config never sheds.
func (cfg *OverloadConfig) shedReason(shardPop int, global int64) (string, bool) {
	if cfg == nil {
		return "", false
	}
	if cfg.MaxPerShard > 0 && shardPop >= cfg.MaxPerShard {
		return fmt.Sprintf("shard postponed population %d at bound %d", shardPop, cfg.MaxPerShard), true
	}
	if cfg.GlobalHighWater > 0 && global >= int64(cfg.GlobalHighWater) {
		return fmt.Sprintf("global postponed population %d at high water %d", global, cfg.GlobalHighWater), true
	}
	return "", false
}

// budget returns the postponement budget granted for a requested
// timeout at the current global postponed population: the request
// itself below the soft water mark, shrinking linearly to MinBudget at
// the high-water mark.
func (cfg *OverloadConfig) budget(req time.Duration, global int64) time.Duration {
	if cfg == nil || cfg.GlobalHighWater <= 0 {
		return req
	}
	soft := cfg.SoftWater
	if soft <= 0 {
		soft = cfg.GlobalHighWater / 2
	}
	if global <= int64(soft) {
		return req
	}
	min := cfg.MinBudget
	if min <= 0 {
		min = defaultMinBudget
	}
	if req <= min {
		return req
	}
	span := int64(cfg.GlobalHighWater - soft)
	if span <= 0 {
		return min
	}
	over := global - int64(soft)
	if over >= span {
		return min
	}
	return req - time.Duration(over)*(req-min)/time.Duration(span)
}
