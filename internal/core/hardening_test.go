package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cbreak/internal/guard"
	"cbreak/internal/guard/faultinject"
)

// --- Panic isolation -------------------------------------------------

func TestPredicatePanicOutcomes(t *testing.T) {
	boom := func() bool { panic("predicate boom") }
	cases := []struct {
		name string
		run  func(e *Engine) Outcome
	}{
		{"local", func(e *Engine) Outcome {
			tr := NewPredTrigger("bp", nil, boom, nil)
			return e.TriggerOutcome(tr, true, Options{})
		}},
		{"extra-local", func(e *Engine) Outcome {
			tr := NewConflictTrigger("bp", new(int))
			return e.TriggerOutcome(tr, true, Options{ExtraLocal: boom})
		}},
		{"injected-local", func(e *Engine) Outcome {
			e.SetInjector(faultinject.NewPlan().PanicLocal("bp", faultinject.BothSides))
			return e.TriggerOutcome(NewConflictTrigger("bp", new(int)), true, Options{})
		}},
		{"injected-extra", func(e *Engine) Outcome {
			e.SetInjector(faultinject.NewPlan().PanicExtra("bp", faultinject.BothSides))
			tr := NewConflictTrigger("bp", new(int))
			return e.TriggerOutcome(tr, true, Options{ExtraLocal: func() bool { return true }})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newTestEngine()
			if out := tc.run(e); out != OutcomePanic {
				t.Fatalf("outcome = %v, want panic", out)
			}
			if got := e.Stats("bp").Panics(); got != 1 {
				t.Fatalf("Panics = %d, want 1", got)
			}
			if got := e.IncidentCount(guard.KindPanic); got != 1 {
				t.Fatalf("panic incidents = %d, want 1", got)
			}
			if got := e.PostponedCount("bp"); got != 0 {
				t.Fatalf("postponed after panic = %d, want 0", got)
			}
		})
	}
}

func TestPredicatePanicStillRunsAction(t *testing.T) {
	e := newTestEngine()
	tr := NewPredTrigger("bp", nil, func() bool { panic("boom") }, nil)
	ran := false
	if hit := e.TriggerHereAnd(tr, true, Options{}, func() { ran = true }); hit {
		t.Fatal("panicked trigger reported a hit")
	}
	if !ran {
		t.Fatal("action (the app's own instruction) must run even when the predicate panics")
	}
}

func TestGlobalPredicatePanicReleasesPartner(t *testing.T) {
	e := newTestEngine()
	e.DefaultTimeout = 5 * time.Second // only a poisoned release can return quickly

	partnerOut := make(chan Outcome, 1)
	go func() {
		tr := NewPredTrigger("bp", nil, nil, func(other *PredTrigger) bool { return true })
		partnerOut <- e.TriggerOutcome(tr, false, Options{})
	}()
	waitForPostponed(t, e, "bp", 1)

	poison := NewPredTrigger("bp", nil, nil, func(other *PredTrigger) bool { panic("global boom") })
	if out := e.TriggerOutcome(poison, true, Options{}); out != OutcomePanic {
		t.Fatalf("arriving side outcome = %v, want panic", out)
	}
	select {
	case out := <-partnerOut:
		if out != OutcomePanic {
			t.Fatalf("postponed partner outcome = %v, want panic", out)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("postponed partner not released after poisoned joint predicate")
	}
	if got := e.PostponedCount("bp"); got != 0 {
		t.Fatalf("postponed = %d, want 0", got)
	}
	if got := e.IncidentCount(guard.KindPanic); got != 1 {
		t.Fatalf("panic incidents = %d, want 1", got)
	}
}

func TestActionPanicPolicies(t *testing.T) {
	runPair := func(e *Engine, action func()) (firstHit bool, panicked any, secondHit bool) {
		var wg sync.WaitGroup
		obj := new(int)
		wg.Add(2)
		go func() {
			defer wg.Done()
			defer func() { panicked = recover() }()
			firstHit = e.TriggerHereAnd(NewConflictTrigger("bp", obj), true, Options{}, action)
		}()
		go func() {
			defer wg.Done()
			secondHit = e.TriggerHere(NewConflictTrigger("bp", obj), false, Options{})
		}()
		wg.Wait()
		return
	}

	t.Run("default-repanics", func(t *testing.T) {
		e := newTestEngine()
		_, panicked, secondHit := runPair(e, func() { panic("action boom") })
		if panicked == nil {
			t.Fatal("action panic must propagate to the caller by default")
		}
		if !secondHit {
			t.Fatal("partner must still be released when the first action panics")
		}
		if got := e.IncidentCount(guard.KindPanic); got != 1 {
			t.Fatalf("panic incidents = %d, want 1", got)
		}
	})
	t.Run("isolated", func(t *testing.T) {
		e := newTestEngine()
		e.SetIsolateActionPanics(true)
		firstHit, panicked, secondHit := runPair(e, func() { panic("action boom") })
		if panicked != nil {
			t.Fatalf("isolated action panic escaped: %v", panicked)
		}
		if firstHit {
			t.Fatal("absorbed action panic must not count as a hit for the caller")
		}
		if !secondHit {
			t.Fatal("partner must still be released")
		}
		if got := e.Stats("bp").Panics(); got != 1 {
			t.Fatalf("Panics = %d, want 1", got)
		}
	})
}

func TestMultiPredicatePanic(t *testing.T) {
	e := newTestEngine()
	e.SetInjector(faultinject.NewPlan().PanicLocal("bp", faultinject.BothSides))
	out := e.triggerMulti(e.shard("bp"), NewConflictTrigger("bp", new(int)), 0, 3, Options{}, nil)
	if out != OutcomePanic {
		t.Fatalf("multi outcome = %v, want panic", out)
	}
	if got := e.MultiPostponedCount("bp"); got != 0 {
		t.Fatalf("multi postponed = %d, want 0", got)
	}
}

// --- Circuit breakers ------------------------------------------------

// lonelyTimeouts drives n one-sided arrivals so every postponement times
// out.
func lonelyTimeouts(e *Engine, n int, timeout time.Duration) {
	for i := 0; i < n; i++ {
		e.TriggerHere(NewConflictTrigger("bp", new(int)), true, Options{Timeout: timeout})
	}
}

func TestBreakerTripShedsArrivals(t *testing.T) {
	e := newTestEngine()
	e.SetBreakerConfig(&guard.BreakerConfig{
		MinSamples: 3, TimeoutRate: 0.9, Backoff: time.Hour, // never probes during the test
	})
	lonelyTimeouts(e, 3, 5*time.Millisecond)
	if got := e.Stats("bp").Trips(); got != 1 {
		t.Fatalf("Trips = %d, want 1", got)
	}
	if snap, ok := e.BreakerSnapshot("bp"); !ok || snap.State != guard.BreakerOpen {
		t.Fatalf("breaker snapshot = %v/%v, want open", snap.State, ok)
	}
	if got := e.IncidentCount(guard.KindBreakerTrip); got != 1 {
		t.Fatalf("trip incidents = %d, want 1", got)
	}

	// Arrivals now shed: no postponement, action still runs, near-instant.
	start := time.Now()
	ran := false
	out := e.trigger(e.shard("bp"), NewConflictTrigger("bp", new(int)), true, Options{Timeout: time.Second}, func() { ran = true })
	if out != OutcomeShed {
		t.Fatalf("outcome = %v, want shed", out)
	}
	if !ran {
		t.Fatal("shed arrival must still run its action")
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("shed arrival took %v; must pass through without postponement", d)
	}
	if got := e.Stats("bp").Sheds(); got != 1 {
		t.Fatalf("Sheds = %d, want 1", got)
	}
}

func TestBreakerTripProbeRearm(t *testing.T) {
	e := newTestEngine()
	e.SetBreakerConfig(&guard.BreakerConfig{
		MinSamples: 3, TimeoutRate: 0.9, Backoff: 150 * time.Millisecond,
	})
	// 100%-timeout breakpoint: trips after MinSamples lonely arrivals.
	lonelyTimeouts(e, 3, 5*time.Millisecond)
	if snap, _ := e.BreakerSnapshot("bp"); snap.State != guard.BreakerOpen {
		t.Fatalf("state = %v after 100%% timeouts, want open", snap.State)
	}
	if out := e.TriggerOutcome(NewConflictTrigger("bp", new(int)), true, Options{}); out != OutcomeShed {
		t.Fatalf("tripped breakpoint outcome = %v, want shed (auto-disabled)", out)
	}

	// After the backoff, a matching pair probes the breakpoint: both sides
	// are admitted (a rendezvous probe needs its partner) and the hit
	// re-arms the breaker.
	time.Sleep(200 * time.Millisecond)
	obj := new(int)
	var wg sync.WaitGroup
	var hit1, hit2 bool
	wg.Add(2)
	go func() { defer wg.Done(); hit1 = e.TriggerHere(NewConflictTrigger("bp", obj), true, Options{}) }()
	go func() { defer wg.Done(); hit2 = e.TriggerHere(NewConflictTrigger("bp", obj), false, Options{}) }()
	wg.Wait()
	if !hit1 || !hit2 {
		t.Fatalf("probe pair hit = %v/%v, want both true", hit1, hit2)
	}
	if snap, _ := e.BreakerSnapshot("bp"); snap.State != guard.BreakerClosed {
		t.Fatalf("state = %v after probe hit, want closed (re-armed)", snap.State)
	}
	if got := e.Stats("bp").Rearms(); got != 1 {
		t.Fatalf("Rearms = %d, want 1", got)
	}
	if got := e.IncidentCount(guard.KindBreakerProbe); got == 0 {
		t.Fatal("no probe incident recorded")
	}
	if got := e.IncidentCount(guard.KindBreakerRearm); got != 1 {
		t.Fatalf("rearm incidents = %d, want 1", got)
	}

	// Re-armed: normal rendezvous continues to work.
	wg.Add(2)
	go func() { defer wg.Done(); hit1 = e.TriggerHere(NewConflictTrigger("bp", obj), true, Options{}) }()
	go func() { defer wg.Done(); hit2 = e.TriggerHere(NewConflictTrigger("bp", obj), false, Options{}) }()
	wg.Wait()
	if !hit1 || !hit2 {
		t.Fatalf("post-re-arm hit = %v/%v, want both true", hit1, hit2)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	e := newTestEngine()
	e.SetBreakerConfig(&guard.BreakerConfig{
		MinSamples: 3, TimeoutRate: 0.9, Backoff: 30 * time.Millisecond, MaxBackoff: time.Hour,
	})
	lonelyTimeouts(e, 3, 5*time.Millisecond)
	time.Sleep(50 * time.Millisecond)
	// The probe times out (still no partner): breaker re-opens, backoff doubles.
	lonelyTimeouts(e, 1, 5*time.Millisecond)
	snap, _ := e.BreakerSnapshot("bp")
	if snap.State != guard.BreakerOpen {
		t.Fatalf("state = %v after failed probe, want open", snap.State)
	}
	if snap.Backoff != 60*time.Millisecond {
		t.Fatalf("backoff = %v after failed probe, want doubled 60ms", snap.Backoff)
	}
	if got := e.Stats("bp").Trips(); got != 2 {
		t.Fatalf("Trips = %d (initial + re-open), want 2", got)
	}
}

func TestBreakerDisabledByDefault(t *testing.T) {
	e := newTestEngine()
	lonelyTimeouts(e, 20, time.Millisecond)
	if _, ok := e.BreakerSnapshot("bp"); ok {
		t.Fatal("breaker exists without SetBreakerConfig")
	}
	if out := e.TriggerOutcome(NewConflictTrigger("bp", new(int)), true, Options{Timeout: time.Millisecond}); out != OutcomeTimeout {
		t.Fatalf("outcome = %v, want timeout (no shedding without breakers)", out)
	}
}

// --- Watchdog --------------------------------------------------------

func waitForPostponed(t *testing.T, e *Engine, name string, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for e.PostponedCount(name)+e.MultiPostponedCount(name) < n {
		if time.Now().After(deadline) {
			t.Fatalf("never saw %d postponed on %q", n, name)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWatchdogForceReleasesWedgedWaiter(t *testing.T) {
	e := newTestEngine()
	// WedgeWait simulates a broken postponement timer: the waiter's own
	// select would sleep for wedgedTimeout. Only the watchdog frees it.
	e.SetInjector(faultinject.NewPlan().WedgeWait("bp", faultinject.BothSides))
	e.StartWatchdog(10*time.Millisecond, 10*time.Millisecond)
	defer e.StopWatchdog()

	out := make(chan Outcome, 1)
	go func() {
		out <- e.TriggerOutcome(NewConflictTrigger("bp", new(int)), true, Options{Timeout: 30 * time.Millisecond})
	}()
	select {
	case got := <-out:
		if got != OutcomeTimeout {
			t.Fatalf("outcome = %v, want timeout from watchdog release", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never released the wedged waiter")
	}
	if got := e.IncidentCount(guard.KindWatchdogRelease); got != 1 {
		t.Fatalf("watchdog incidents = %d, want 1", got)
	}
	if got := e.PostponedCount("bp"); got != 0 {
		t.Fatalf("postponed = %d after release, want 0", got)
	}
	incs := e.Incidents()
	if len(incs) == 0 || !strings.Contains(incs[len(incs)-1].Detail, "force-released") {
		t.Fatalf("incident detail missing force-release record: %+v", incs)
	}
}

func TestWatchdogForceReleasesWedgedMultiWaiter(t *testing.T) {
	e := newTestEngine()
	e.SetInjector(faultinject.NewPlan().WedgeWait("bp", faultinject.BothSides))
	e.StartWatchdog(10*time.Millisecond, 10*time.Millisecond)
	defer e.StopWatchdog()

	out := make(chan Outcome, 1)
	go func() {
		out <- e.triggerMulti(e.shard("bp"), NewConflictTrigger("bp", new(int)), 0, 3, Options{Timeout: 30 * time.Millisecond}, nil)
	}()
	select {
	case got := <-out:
		if got != OutcomeTimeout {
			t.Fatalf("outcome = %v, want timeout", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never released the wedged multi waiter")
	}
	if got := e.MultiPostponedCount("bp"); got != 0 {
		t.Fatalf("multi postponed = %d, want 0", got)
	}
}

func TestWatchdogLeavesHealthyWaitersAlone(t *testing.T) {
	e := newTestEngine()
	e.StartWatchdog(5*time.Millisecond, 50*time.Millisecond)
	defer e.StopWatchdog()

	obj := new(int)
	var wg sync.WaitGroup
	var hit1, hit2 bool
	wg.Add(2)
	go func() { defer wg.Done(); hit1 = e.TriggerHere(NewConflictTrigger("bp", obj), true, Options{}) }()
	go func() {
		defer wg.Done()
		time.Sleep(30 * time.Millisecond) // within budget
		hit2 = e.TriggerHere(NewConflictTrigger("bp", obj), false, Options{})
	}()
	wg.Wait()
	if !hit1 || !hit2 {
		t.Fatalf("hit = %v/%v, want both true (watchdog must not fire early)", hit1, hit2)
	}
	if got := e.IncidentCount(guard.KindWatchdogRelease); got != 0 {
		t.Fatalf("watchdog incidents = %d, want 0", got)
	}
}

func TestWatchdogStartStop(t *testing.T) {
	e := newTestEngine()
	if e.WatchdogRunning() {
		t.Fatal("watchdog running before start")
	}
	e.StartWatchdog(0, 0) // defaults
	e.StartWatchdog(0, 0) // idempotent
	if !e.WatchdogRunning() {
		t.Fatal("watchdog not running after start")
	}
	e.StopWatchdog()
	e.StopWatchdog() // idempotent
	if e.WatchdogRunning() {
		t.Fatal("watchdog still running after stop")
	}
}

// --- Stalled actions -------------------------------------------------

func TestStalledActionRecordsIncident(t *testing.T) {
	e := newTestEngine()
	e.SetInjector(faultinject.NewPlan().StallAction("bp", faultinject.FirstSide, 60*time.Millisecond))

	obj := new(int)
	var wg sync.WaitGroup
	var hit2 bool
	wg.Add(2)
	go func() {
		defer wg.Done()
		e.TriggerHereAnd(NewConflictTrigger("bp", obj), true, Options{Timeout: 20 * time.Millisecond}, func() {})
	}()
	go func() {
		defer wg.Done()
		hit2 = e.TriggerHere(NewConflictTrigger("bp", obj), false, Options{Timeout: 20 * time.Millisecond})
	}()
	wg.Wait()
	if !hit2 {
		t.Fatal("second side must be released (defensive timeout) despite the stalled first action")
	}
	if got := e.IncidentCount(guard.KindStall); got == 0 {
		t.Fatal("no stall incident recorded for an action past the handshake budget")
	}
}

// --- Drop (partner no-show) -----------------------------------------

func TestDroppedArrivalLeavesPartnerToTimeout(t *testing.T) {
	e := newTestEngine()
	e.SetInjector(faultinject.NewPlan().Drop("bp", faultinject.FirstSide))
	obj := new(int)

	out := make(chan Outcome, 1)
	go func() {
		out <- e.TriggerOutcome(NewConflictTrigger("bp", obj), false, Options{Timeout: 50 * time.Millisecond})
	}()
	waitForPostponed(t, e, "bp", 1)
	if got := e.TriggerOutcome(NewConflictTrigger("bp", obj), true, Options{}); got != OutcomeLocalFalse {
		t.Fatalf("dropped arrival outcome = %v, want local-false", got)
	}
	if got := <-out; got != OutcomeTimeout {
		t.Fatalf("partner outcome = %v, want timeout (no-show)", got)
	}
}

// --- Reset vs in-flight handshakes ----------------------------------

// TestResetDuringPostponementNeverLeaks resets the engine while waiters
// are postponed (two-way and multi) and asserts every one returns
// promptly and nothing stays in the postponed sets.
func TestResetDuringPostponementNeverLeaks(t *testing.T) {
	e := newTestEngine()
	e.DefaultTimeout = 10 * time.Second // only Reset can release them quickly

	const pairs = 8
	outs := make(chan Outcome, pairs*2)
	for i := 0; i < pairs; i++ {
		obj := new(int)
		go func() { outs <- e.TriggerOutcome(NewConflictTrigger("two", obj), true, Options{}) }()
		go func() {
			outs <- e.triggerMulti(e.shard("multi"), NewConflictTrigger("multi", obj), 0, 3, Options{}, nil)
		}()
	}
	waitForPostponed(t, e, "two", pairs)
	waitForPostponed(t, e, "multi", pairs)

	e.Reset()

	for i := 0; i < pairs*2; i++ {
		select {
		case out := <-outs:
			if out != OutcomeTimeout {
				t.Fatalf("reset waiter outcome = %v, want timeout", out)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("waiter %d still blocked after Reset: leak", i)
		}
	}
	if n := e.PostponedCount("two") + e.MultiPostponedCount("multi"); n != 0 {
		t.Fatalf("%d waiters left in postponed sets after Reset", n)
	}
}

// TestResetDuringActiveHandshake hammers Reset concurrently with live
// rendezvous traffic: every trigger call must return within a bounded
// time no matter where Reset cuts the handshake.
func TestResetDuringActiveHandshake(t *testing.T) {
	e := newTestEngine()
	e.DefaultTimeout = 20 * time.Millisecond

	stop := make(chan struct{})
	var resets sync.WaitGroup
	resets.Add(1)
	go func() {
		defer resets.Done()
		for {
			select {
			case <-stop:
				return
			default:
				e.Reset()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	obj := new(int)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(first bool) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				e.TriggerHereAnd(NewConflictTrigger("bp", obj), first, Options{}, func() {})
			}
		}(i%2 == 0)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("trigger traffic wedged while Reset was cycling: leaked handshake")
	}
	close(stop)
	resets.Wait()
	if n := e.PostponedCount("bp"); n != 0 {
		t.Fatalf("%d waiters leaked", n)
	}
}

// --- Snapshot --------------------------------------------------------

func TestSnapshotConsistentUnderLoad(t *testing.T) {
	e := newTestEngine()
	e.DefaultTimeout = time.Millisecond
	stop := make(chan struct{})
	var wg sync.WaitGroup
	obj := new(int)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(first bool) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					e.TriggerHere(NewConflictTrigger("bp", obj), first, Options{})
				}
			}
		}(i%2 == 0)
	}
	// Read snapshots concurrently with the traffic; -race verifies the
	// reads are not torn.
	for i := 0; i < 100; i++ {
		for _, snap := range e.SnapshotAll() {
			if snap.Arrivals < snap.Hits {
				t.Errorf("snapshot arrivals=%d < hits=%d", snap.Arrivals, snap.Hits)
			}
		}
	}
	close(stop)
	wg.Wait()

	snap := e.Stats("bp").Snapshot()
	if snap.Name != "bp" {
		t.Fatalf("snapshot name = %q", snap.Name)
	}
	if snap.Arrivals != snap.LocalFalses+snap.Postpones+snap.Hits {
		t.Fatalf("conservation violated in snapshot: %+v", snap)
	}
	if snap.Hits > 0 && snap.LastHit.IsZero() {
		t.Fatal("LastHit zero despite hits")
	}
}
