package core

import "cbreak/internal/guard"

// DurableSink receives a copy of every engine event and guard incident
// as it is recorded, so a crashed process leaves a post-mortem trail on
// disk instead of losing the in-memory rings with the heap. The
// canonical implementation is internal/journal/sink, which frames each
// entry as JSON in a crash-safe write-ahead journal.
//
// Sinks are called synchronously on the hot path (the goroutine hitting
// the breakpoint), so they must be fast and must never call back into
// the engine. A journal sink should use SyncInterval or SyncNone unless
// per-event durability is genuinely worth an fsync per breakpoint
// arrival. Sink errors are the sink's own problem: the engine ignores
// them, because breakpoint semantics must not change when a disk fills.
type DurableSink interface {
	RecordEvent(Event)
	RecordIncident(guard.Incident)
}

// durableBox wraps the sink for atomic storage on the engine.
type durableBox struct {
	s DurableSink
}

// SetDurableSink installs (or, with nil, removes) the engine's durable
// event/incident sink. Safe to call concurrently with trigger traffic;
// events recorded while the swap is in flight may go to either sink.
func (e *Engine) SetDurableSink(s DurableSink) {
	if s == nil {
		e.durable.Store(nil)
		return
	}
	e.durable.Store(&durableBox{s: s})
}

// DurableSinkInstalled reports whether a durable sink is attached.
func (e *Engine) DurableSinkInstalled() bool { return e.durable.Load() != nil }

func (e *Engine) durableEvent(ev Event) {
	if b := e.durable.Load(); b != nil {
		b.s.RecordEvent(ev)
	}
}

func (e *Engine) durableIncident(in guard.Incident) {
	if b := e.durable.Load(); b != nil {
		b.s.RecordIncident(in)
	}
}
