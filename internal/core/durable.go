package core

import (
	"sync"

	"cbreak/internal/guard"
	"cbreak/internal/telemetry"
)

// DurableSink receives a copy of every engine event and guard incident
// as it is recorded, so a crashed process leaves a post-mortem trail on
// disk instead of losing the in-memory rings with the heap. The
// canonical implementation is internal/journal/sink, which frames each
// entry as JSON in a crash-safe write-ahead journal.
//
// Since the telemetry refactor the sink is no longer a bespoke fan-out:
// SetDurableSink attaches the sink to the engine's telemetry bus as a
// synchronous tap, the same bus live NDJSON streams and metric counters
// subscribe to. Delivery semantics are unchanged — sinks are called
// synchronously on the hot path (the goroutine hitting the breakpoint),
// so they must be fast and must never call back into the engine. A
// journal sink should use SyncInterval or SyncNone unless per-event
// durability is genuinely worth an fsync per breakpoint arrival. Sink
// errors are the sink's own problem: the engine ignores them, because
// breakpoint semantics must not change when a disk fills.
type DurableSink interface {
	RecordEvent(Event)
	RecordIncident(guard.Incident)
}

// sinkTap adapts a DurableSink to the telemetry bus: events and
// incidents are forwarded synchronously, other record kinds (none are
// published on engine buses today) are ignored.
type sinkTap struct {
	s DurableSink
}

// Deliver implements telemetry.Tap.
func (t sinkTap) Deliver(rec telemetry.Record) {
	switch rec.Kind {
	case telemetry.RecordEvent:
		t.s.RecordEvent(rec.Event)
	case telemetry.RecordIncident:
		t.s.RecordIncident(rec.Incident)
	}
}

// durableState tracks the currently attached sink's bus tap so
// SetDurableSink can replace or remove it.
type durableState struct {
	mu  sync.Mutex
	tap *telemetry.TapHandle
}

// SetDurableSink installs (or, with nil, removes) the engine's durable
// event/incident sink by (re)attaching it as a synchronous tap on the
// engine's telemetry bus. Safe to call concurrently with trigger
// traffic; events recorded while the swap is in flight may go to either
// sink.
func (e *Engine) SetDurableSink(s DurableSink) {
	e.durable.mu.Lock()
	defer e.durable.mu.Unlock()
	if e.durable.tap != nil {
		e.durable.tap.Detach()
		e.durable.tap = nil
	}
	if s != nil {
		e.durable.tap = e.bus.AttachTap(sinkTap{s: s})
	}
}

// DurableSinkInstalled reports whether a durable sink is attached.
func (e *Engine) DurableSinkInstalled() bool {
	e.durable.mu.Lock()
	defer e.durable.mu.Unlock()
	return e.durable.tap != nil
}
