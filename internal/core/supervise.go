package core

import (
	"time"

	"cbreak/internal/guard"
)

// This file is the engine's supervision surface: waiter enumeration for
// the wait-graph supervisor (internal/waitgraph) and the single forced-
// release path shared by the watchdog and the supervisor.
//
// Forced release is deliberately funneled through one helper,
// forceReleaseShard: the waiter state machine under the shard mutex
// (waiterWaiting → waiterCancelled, cancelCh closed exactly once) makes
// a release idempotent, so the watchdog, a cycle-breaking supervisor,
// and a racing Reset can all target the same goroutine without a
// double close or a double count.

// PostponedWaiter describes one currently-postponed goroutine, as seen
// by the wait-graph supervisor: which breakpoint it is parked on, which
// side/slot it arrived at, and when its postponement budget expires.
type PostponedWaiter struct {
	// Breakpoint is the breakpoint name the goroutine is postponed on.
	Breakpoint string
	// GID is the postponed goroutine.
	GID uint64
	// Slot is the arrival's slot (for two-way breakpoints: 0 for the
	// first-action side, 1 for the second) and Arity the breakpoint's
	// arity (2 for two-way).
	Slot, Arity int
	// Deadline is when the postponement budget expires.
	Deadline time.Time
}

// PostponedWaiters snapshots every currently-postponed goroutine across
// all shards, two-way and multi-way. The snapshot locks one shard at a
// time, so assembling it never stops the world; entries may be stale by
// the time the caller acts on them, which forced release tolerates.
func (e *Engine) PostponedWaiters() []PostponedWaiter {
	var out []PostponedWaiter
	for _, s := range e.shards() {
		s.mu.Lock()
		for _, w := range s.postponed {
			if w.state != waiterWaiting {
				continue
			}
			slot := 1
			if w.first {
				slot = 0
			}
			out = append(out, PostponedWaiter{Breakpoint: s.name, GID: w.gid,
				Slot: slot, Arity: 2, Deadline: w.deadline})
		}
		for _, w := range s.multi {
			if w.state != waiterWaiting {
				continue
			}
			out = append(out, PostponedWaiter{Breakpoint: s.name, GID: w.gid,
				Slot: w.slot, Arity: w.arity, Deadline: w.deadline})
		}
		s.mu.Unlock()
	}
	return out
}

// releasedWaiter identifies one waiter freed by a forced release.
type releasedWaiter struct {
	gid      uint64
	deadline time.Time
}

// forceReleaseShard force-releases every currently-waiting waiter on s
// (two-way and multi-way) matched by the predicate, with a timeout
// outcome — the released goroutine observes exactly what an expired
// postponement budget would have produced, which is the paper's safety
// argument for early release. This is the only forced-release path:
// the watchdog and ForceRelease both go through it, and the state check
// under the shard mutex makes concurrent releases of the same waiter
// idempotent.
func (e *Engine) forceReleaseShard(s *bpState, match func(gid uint64, deadline time.Time) bool) []releasedWaiter {
	var out []releasedWaiter
	s.mu.Lock()
	for _, w := range append([]*waiter(nil), s.postponed...) {
		if w.state == waiterWaiting && match(w.gid, w.deadline) {
			s.releaseWaiterLocked(w, OutcomeTimeout)
			out = append(out, releasedWaiter{w.gid, w.deadline})
		}
	}
	for _, w := range append([]*mwaiter(nil), s.multi...) {
		if w.state == waiterWaiting && match(w.gid, w.deadline) {
			s.releaseMultiWaiterLocked(w, OutcomeTimeout)
			out = append(out, releasedWaiter{w.gid, w.deadline})
		}
	}
	s.mu.Unlock()
	return out
}

// ForceRelease releases the goroutine gid postponed on the named
// breakpoint, if it is still postponed, recording an incident of the
// given kind. It reports whether a waiter was actually released: false
// means the goroutine had already been matched, timed out, or released
// by another mechanism (watchdog, Reset), so callers can treat the
// release as exactly-once.
func (e *Engine) ForceRelease(name string, gid uint64, kind guard.IncidentKind, detail string) bool {
	s, ok := e.lookupShard(name)
	if !ok {
		return false
	}
	rel := e.forceReleaseShard(s, func(g uint64, _ time.Time) bool { return g == gid })
	if len(rel) == 0 {
		return false
	}
	e.recordIncident(kind, name, gid, detail)
	return true
}
