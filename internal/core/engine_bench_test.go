package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// These benchmarks measure the engine's arrival hot paths under the
// sharded registry. BenchmarkEngineContention is the headline: G
// goroutines hammering K distinct breakpoints. With the old single
// engine mutex, throughput was flat in K (every arrival serialized);
// with per-breakpoint shards, K >= 8 should scale with GOMAXPROCS
// because arrivals on distinct breakpoints share no lock. CI runs these
// with -benchtime=100x as a smoke test (BENCH_engine.json artifact).

var benchSink atomic.Uint64

// benchEngine returns an engine configured for tight benchmarking (no
// ordering spin-window on hits).
func benchEngine() *Engine {
	e := NewEngine()
	e.OrderWindow = 0
	return e
}

// neverTrigger returns a trigger whose local predicate is false, so an
// arrival takes the hot rejection path: stats, event ring, no
// postponement. This is the cost a refined breakpoint pays on a busy
// production site that is not in the buggy state.
func neverTrigger(name string) Trigger {
	return NewPredTrigger(name, nil, func() bool { return false }, nil)
}

func BenchmarkEngineContention(b *testing.B) {
	for _, k := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			e := benchEngine()
			handles := make([]*Breakpoint, k)
			for i := range handles {
				handles[i] = e.Breakpoint(fmt.Sprintf("bench.bp%d", i))
			}
			var next atomic.Uint64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				// Each worker goroutine binds to one breakpoint, so K
				// partitions the workers across shards.
				h := handles[int(next.Add(1))%k]
				t := neverTrigger(h.Name())
				n := uint64(0)
				for pb.Next() {
					if h.Trigger(t, true, Options{}) {
						n++
					}
				}
				benchSink.Add(n)
			})
		})
	}
}

// BenchmarkEngineDisabled measures the cost left behind in production
// when breakpoints are switched off — the paper's "like assertions"
// claim. It should be a few atomic loads and no allocation.
func BenchmarkEngineDisabled(b *testing.B) {
	e := benchEngine()
	e.SetEnabled(false)
	h := e.Breakpoint("bench.disabled")
	t := neverTrigger("bench.disabled")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		n := uint64(0)
		for pb.Next() {
			if h.Trigger(t, true, Options{}) {
				n++
			}
		}
		benchSink.Add(n)
	})
}

// BenchmarkEngineDisabledString is the disabled path through the
// string-keyed API (one extra atomic load, no shard resolution since
// the enabled check comes first).
func BenchmarkEngineDisabledString(b *testing.B) {
	e := benchEngine()
	e.SetEnabled(false)
	t := neverTrigger("bench.disabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e.TriggerHere(t, true, Options{}) {
			benchSink.Add(1)
		}
	}
}

// BenchmarkEngineStringKeyed is BenchmarkEngineContention/K=1's
// workload through the string-keyed API: the per-call registry lookup
// the Breakpoint handle hoists. The delta against the handle variant is
// the price of not calling Register.
func BenchmarkEngineStringKeyed(b *testing.B) {
	e := benchEngine()
	t := neverTrigger("bench.bp0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e.TriggerHere(t, true, Options{}) {
			benchSink.Add(1)
		}
	}
}

// BenchmarkEngineHandle is the same workload through a pre-resolved
// handle, serially (compare with BenchmarkEngineStringKeyed).
func BenchmarkEngineHandle(b *testing.B) {
	e := benchEngine()
	h := e.Breakpoint("bench.bp0")
	t := neverTrigger("bench.bp0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if h.Trigger(t, true, Options{}) {
			benchSink.Add(1)
		}
	}
}

// BenchmarkEngineRendezvous measures full hits: pairs of goroutines
// meeting at the same breakpoint, spread over K distinct breakpoints.
// The short pause time keeps the unavoidable unmatched tail (a worker
// whose partner drained its iteration budget) cheap.
func BenchmarkEngineRendezvous(b *testing.B) {
	for _, k := range []int{1, 8} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			e := benchEngine()
			e.DefaultTimeout = 2 * time.Millisecond
			objs := make([]*int, k)
			handles := make([]*Breakpoint, k)
			for i := range handles {
				objs[i] = new(int)
				handles[i] = e.Breakpoint(fmt.Sprintf("bench.rv%d", i))
			}
			var next atomic.Uint64
			// Guarantee both sides of every breakpoint are populated:
			// worker ids 2i and 2i+1 share breakpoint i with opposite
			// sides.
			b.SetParallelism(2 * k)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				id := int(next.Add(1)) - 1
				i := (id / 2) % k
				h, first := handles[i], id%2 == 0
				t := NewConflictTrigger(h.Name(), objs[i])
				n := uint64(0)
				for pb.Next() {
					if h.Trigger(t, first, Options{}) {
						n++
					}
				}
				benchSink.Add(n)
			})
		})
	}
}

// BenchmarkGoroutineID backs the measured-cost claim in goroutineID's
// comment; run with -benchmem to see the pooled buffer keeping it at 0
// allocs.
func BenchmarkGoroutineID(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink.Store(goroutineID())
	}
}
