package core

import (
	"bytes"
	"runtime"
	"strconv"
)

// goroutineID returns the current goroutine's numeric id by parsing the
// first line of a stack trace ("goroutine 123 [running]:"). The id is
// used only to ensure that the two sides of a breakpoint are distinct
// goroutines (the paper's t1 != t2 condition); it is never used for
// scheduling. The parse costs roughly a microsecond, which is negligible
// next to breakpoint pause times.
func goroutineID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	id, err := strconv.ParseUint(string(s), 10, 64)
	if err != nil {
		return 0
	}
	return id
}
