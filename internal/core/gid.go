package core

import (
	"runtime"
	"sync"
)

// gidBufs pools the stack-header buffers goroutineID hands to
// runtime.Stack. The buffer escapes through the runtime call, so a
// plain local would heap-allocate 64 bytes per postponement-eligible
// arrival; the pool amortizes that to zero steady-state allocations.
var gidBufs = sync.Pool{New: func() any { b := make([]byte, 64); return &b }}

// goroutineID returns the current goroutine's numeric id by parsing the
// first line of a stack trace ("goroutine 123 [running]:"). The id is
// used only to ensure that the two sides of a breakpoint are distinct
// goroutines (the paper's t1 != t2 condition); it is never used for
// scheduling. Measured by BenchmarkGoroutineID at ~2.7µs and 0 allocs
// per call (2.1GHz Xeon, go1.24): runtime.Stack dominates, the parse is
// noise. That is ~5 decimal orders below the default 100ms pause time,
// and the cost is only paid once an arrival passes its local predicate
// — the hot rejection path never calls this.
func goroutineID() uint64 {
	bp := gidBufs.Get().(*[]byte)
	buf := *bp
	n := runtime.Stack(buf, false)
	// Parse "goroutine <digits> " in place; no string conversion, no
	// strconv, so the call allocates nothing.
	const prefix = "goroutine "
	var id uint64
	if n > len(prefix) {
		for _, c := range buf[len(prefix):n] {
			if c < '0' || c > '9' {
				break
			}
			id = id*10 + uint64(c-'0')
		}
	}
	gidBufs.Put(bp)
	return id
}
