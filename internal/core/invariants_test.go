package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestStatsConservation checks the engine's accounting invariant: every
// arrival either fails the local predicate, is postponed, or matches
// instantly (one instant match per hit). So for any workload:
//
//	Arrivals == LocalFalses + Postpones + Hits
func TestStatsConservation(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		e := NewEngine()
		e.DefaultTimeout = 5 * time.Millisecond
		rng := rand.New(rand.NewSource(seed))
		objs := []*int{new(int), new(int), new(int)}
		plan := make([]struct {
			obj   *int
			first bool
			delay time.Duration
		}, 40)
		for i := range plan {
			plan[i].obj = objs[rng.Intn(len(objs))]
			plan[i].first = rng.Intn(2) == 0
			plan[i].delay = time.Duration(rng.Intn(3000)) * time.Microsecond
		}
		var wg sync.WaitGroup
		for _, p := range plan {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(p.delay)
				e.TriggerHere(NewConflictTrigger("inv", p.obj), p.first, Options{})
			}()
		}
		wg.Wait()
		st := e.Stats("inv")
		got := st.LocalFalses() + st.Postpones() + st.Hits()
		if st.Arrivals() != got {
			t.Fatalf("seed %d: arrivals=%d != localFalse+postpones+hits=%d (%s)",
				seed, st.Arrivals(), got, st)
		}
		// Each hit pairs one instant-matcher with one postponed waiter.
		if st.Hits() > st.Postpones() {
			t.Fatalf("seed %d: hits=%d > postpones=%d", seed, st.Hits(), st.Postpones())
		}
		// No waiter may leak.
		if n := e.PostponedCount("inv"); n != 0 {
			t.Fatalf("seed %d: %d waiters leaked", seed, n)
		}
	}
}

// TestNoLeakUnderChurn hammers the engine with matching and
// non-matching arrivals concurrently and verifies the postponed set
// drains and all goroutines return.
func TestNoLeakUnderChurn(t *testing.T) {
	e := NewEngine()
	e.DefaultTimeout = 2 * time.Millisecond
	var wg sync.WaitGroup
	shared := new(int)
	for i := 0; i < 64; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			obj := shared
			if i%8 == 7 {
				obj = new(int) // a loner that can never match
			}
			for j := 0; j < 20; j++ {
				e.TriggerHere(NewConflictTrigger("churn", obj), (i+j)%2 == 0, Options{})
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("churn workload hung")
	}
	if n := e.PostponedCount("churn"); n != 0 {
		t.Fatalf("%d waiters leaked", n)
	}
	st := e.Stats("churn")
	if st.Arrivals() != 64*20 {
		t.Fatalf("arrivals = %d, want %d", st.Arrivals(), 64*20)
	}
	if st.Arrivals() != st.LocalFalses()+st.Postpones()+st.Hits() {
		t.Fatalf("conservation violated: %s", st)
	}
}

// TestTimeoutAccuracy verifies a lonely trigger's pause is close to the
// requested timeout — the pause time T is the paper's main tuning knob,
// so it must be honored.
func TestTimeoutAccuracy(t *testing.T) {
	e := NewEngine()
	for _, timeout := range []time.Duration{10 * time.Millisecond, 50 * time.Millisecond} {
		start := time.Now()
		e.TriggerHere(NewConflictTrigger("acc", new(int)), true, Options{Timeout: timeout})
		elapsed := time.Since(start)
		if elapsed < timeout || elapsed > timeout+40*time.Millisecond {
			t.Fatalf("timeout %v: paused %v", timeout, elapsed)
		}
	}
}

// TestConcurrentEnginesIndependent verifies engines don't share state:
// waiters on one engine never match triggers on another.
func TestConcurrentEnginesIndependent(t *testing.T) {
	e1, e2 := NewEngine(), NewEngine()
	e1.DefaultTimeout = 20 * time.Millisecond
	e2.DefaultTimeout = 20 * time.Millisecond
	obj := new(int)
	var hit1, hit2 bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); hit1 = e1.TriggerHere(NewConflictTrigger("x", obj), true, Options{}) }()
	go func() { defer wg.Done(); hit2 = e2.TriggerHere(NewConflictTrigger("x", obj), false, Options{}) }()
	wg.Wait()
	if hit1 || hit2 {
		t.Fatal("cross-engine match")
	}
}
