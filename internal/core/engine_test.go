package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbreak/internal/guard"
)

func newTestEngine() *Engine {
	e := NewEngine()
	e.DefaultTimeout = 200 * time.Millisecond
	return e
}

func TestConflictRendezvous(t *testing.T) {
	e := newTestEngine()
	obj := new(int)
	var hit1, hit2 bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		hit1 = e.TriggerHere(NewConflictTrigger("bp", obj), true, Options{})
	}()
	go func() {
		defer wg.Done()
		hit2 = e.TriggerHere(NewConflictTrigger("bp", obj), false, Options{})
	}()
	wg.Wait()
	if !hit1 || !hit2 {
		t.Fatalf("expected both sides to hit, got first=%v second=%v", hit1, hit2)
	}
	if got := e.Stats("bp").Hits(); got != 1 {
		t.Fatalf("Hits = %d, want 1", got)
	}
}

func TestConflictDifferentObjectsTimeout(t *testing.T) {
	e := newTestEngine()
	e.DefaultTimeout = 20 * time.Millisecond
	a, b := new(int), new(int)
	var hit1, hit2 bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		hit1 = e.TriggerHere(NewConflictTrigger("bp", a), true, Options{})
	}()
	go func() {
		defer wg.Done()
		hit2 = e.TriggerHere(NewConflictTrigger("bp", b), false, Options{})
	}()
	wg.Wait()
	if hit1 || hit2 {
		t.Fatalf("different objects must not match: first=%v second=%v", hit1, hit2)
	}
	if got := e.Stats("bp").Timeouts(); got != 2 {
		t.Fatalf("Timeouts = %d, want 2", got)
	}
}

func TestDifferentNamesDoNotMatch(t *testing.T) {
	e := newTestEngine()
	e.DefaultTimeout = 20 * time.Millisecond
	obj := new(int)
	var wg sync.WaitGroup
	var hits atomic.Int32
	wg.Add(2)
	go func() {
		defer wg.Done()
		if e.TriggerHere(NewConflictTrigger("bpA", obj), true, Options{}) {
			hits.Add(1)
		}
	}()
	go func() {
		defer wg.Done()
		if e.TriggerHere(NewConflictTrigger("bpB", obj), false, Options{}) {
			hits.Add(1)
		}
	}()
	wg.Wait()
	if hits.Load() != 0 {
		t.Fatalf("breakpoints with different names matched")
	}
}

func TestSameGoroutineNeverMatches(t *testing.T) {
	e := newTestEngine()
	e.DefaultTimeout = 10 * time.Millisecond
	obj := new(int)
	// Two sequential arrivals from the same goroutine: the first times
	// out before the second arrives, but even a postponed entry from the
	// same goroutine must not match (t1 != t2). Exercise the gid check
	// directly through findPartner.
	gid := goroutineID()
	w := &waiter{t: NewConflictTrigger("bp", obj), first: false, gid: gid, ch: make(chan matchResult, 1)}
	s := e.shard("bp")
	s.mu.Lock()
	s.postponed = append(s.postponed, w)
	got, _, _ := s.findPartner(NewConflictTrigger("bp", obj), true, gid, guard.Fault{})
	sameSide, _, _ := s.findPartner(NewConflictTrigger("bp", obj), false, gid+1, guard.Fault{})
	s.mu.Unlock()
	if got != nil {
		t.Fatal("findPartner matched a waiter from the same goroutine")
	}
	if sameSide != nil {
		t.Fatal("findPartner matched a waiter from the same breakpoint side")
	}
}

func TestOrderingEnforcedWithHandshake(t *testing.T) {
	// The first-action side's instruction must run before the
	// second-action side's, in both arrival orders.
	for _, firstArrivesFirst := range []bool{true, false} {
		e := newTestEngine()
		obj := new(int)
		var order []string
		var mu sync.Mutex
		record := func(s string) func() {
			return func() {
				mu.Lock()
				order = append(order, s)
				mu.Unlock()
			}
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if !firstArrivesFirst {
				time.Sleep(10 * time.Millisecond)
			}
			e.TriggerHereAnd(NewConflictTrigger("bp", obj), true, Options{}, record("first"))
		}()
		go func() {
			defer wg.Done()
			if firstArrivesFirst {
				time.Sleep(10 * time.Millisecond)
			}
			e.TriggerHereAnd(NewConflictTrigger("bp", obj), false, Options{}, record("second"))
		}()
		wg.Wait()
		if len(order) != 2 || order[0] != "first" || order[1] != "second" {
			t.Fatalf("firstArrivesFirst=%v: order = %v, want [first second]", firstArrivesFirst, order)
		}
	}
}

func TestDisabledEngineIsNoop(t *testing.T) {
	e := newTestEngine()
	e.SetEnabled(false)
	obj := new(int)
	start := time.Now()
	ran := false
	hit := e.TriggerHereAnd(NewConflictTrigger("bp", obj), true, Options{}, func() { ran = true })
	if hit {
		t.Fatal("disabled engine reported a hit")
	}
	if !ran {
		t.Fatal("disabled engine must still run the action")
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("disabled trigger paused for %v", elapsed)
	}
	if out := e.TriggerOutcome(NewConflictTrigger("bp", obj), true, Options{}); out != OutcomeDisabled {
		t.Fatalf("outcome = %v, want disabled", out)
	}
}

func TestDeadlockTriggerMatchesCrossedLocks(t *testing.T) {
	e := newTestEngine()
	lockA, lockB := new(int), new(int)
	var hits atomic.Int32
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if e.TriggerHere(NewDeadlockTrigger("dl", lockA, lockB), true, Options{}) {
			hits.Add(1)
		}
	}()
	go func() {
		defer wg.Done()
		if e.TriggerHere(NewDeadlockTrigger("dl", lockB, lockA), false, Options{}) {
			hits.Add(1)
		}
	}()
	wg.Wait()
	if hits.Load() != 2 {
		t.Fatalf("crossed deadlock triggers: hits = %d, want 2", hits.Load())
	}
}

func TestDeadlockTriggerRejectsUncrossedLocks(t *testing.T) {
	e := newTestEngine()
	e.DefaultTimeout = 20 * time.Millisecond
	lockA, lockB := new(int), new(int)
	var hits atomic.Int32
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if e.TriggerHere(NewDeadlockTrigger("dl", lockA, lockB), true, Options{}) {
			hits.Add(1)
		}
	}()
	go func() {
		defer wg.Done()
		// Same order, not crossed: no deadlock state.
		if e.TriggerHere(NewDeadlockTrigger("dl", lockA, lockB), false, Options{}) {
			hits.Add(1)
		}
	}()
	wg.Wait()
	if hits.Load() != 0 {
		t.Fatalf("uncrossed deadlock triggers matched")
	}
}

func TestIgnoreFirstSkipsEarlyArrivals(t *testing.T) {
	e := newTestEngine()
	e.DefaultTimeout = 10 * time.Millisecond
	obj := new(int)
	opts := Options{IgnoreFirst: 3}
	// First three arrivals on the first-action side fail locally.
	for i := 0; i < 3; i++ {
		out := e.TriggerOutcome(NewConflictTrigger("bp", obj), true, opts)
		if out != OutcomeLocalFalse {
			t.Fatalf("arrival %d: outcome = %v, want local-false", i, out)
		}
	}
	// The fourth arrival is postponed (and times out with no partner).
	out := e.TriggerOutcome(NewConflictTrigger("bp", obj), true, opts)
	if out != OutcomeTimeout {
		t.Fatalf("fourth arrival: outcome = %v, want timeout", out)
	}
}

func TestBoundStopsAfterNHits(t *testing.T) {
	e := newTestEngine()
	obj := new(int)
	opts := Options{Bound: 1}
	hitPair := func() (bool, bool) {
		var h1, h2 bool
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); h1 = e.TriggerHere(NewConflictTrigger("bp", obj), true, opts) }()
		go func() { defer wg.Done(); h2 = e.TriggerHere(NewConflictTrigger("bp", obj), false, opts) }()
		wg.Wait()
		return h1, h2
	}
	if h1, h2 := hitPair(); !h1 || !h2 {
		t.Fatalf("first pair should hit: %v %v", h1, h2)
	}
	e.DefaultTimeout = 10 * time.Millisecond
	if h1, h2 := hitPair(); h1 || h2 {
		t.Fatalf("bound=1 exceeded: second pair hit: %v %v", h1, h2)
	}
}

func TestExtraLocalPredicate(t *testing.T) {
	e := newTestEngine()
	obj := new(int)
	allow := atomic.Bool{}
	opts := Options{Timeout: 10 * time.Millisecond, ExtraLocal: allow.Load}
	if out := e.TriggerOutcome(NewConflictTrigger("bp", obj), true, opts); out != OutcomeLocalFalse {
		t.Fatalf("outcome = %v, want local-false while ExtraLocal is false", out)
	}
	allow.Store(true)
	if out := e.TriggerOutcome(NewConflictTrigger("bp", obj), true, opts); out != OutcomeTimeout {
		t.Fatalf("outcome = %v, want timeout once ExtraLocal is true", out)
	}
}

func TestPredTriggerCustomPredicates(t *testing.T) {
	e := newTestEngine()
	mk := func(v int) *PredTrigger {
		return NewPredTrigger("pt", v, func() bool { return v > 0 }, func(o *PredTrigger) bool {
			return o.State.(int)+v == 10
		})
	}
	var hits atomic.Int32
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if e.TriggerHere(mk(4), true, Options{}) {
			hits.Add(1)
		}
	}()
	go func() {
		defer wg.Done()
		if e.TriggerHere(mk(6), false, Options{}) {
			hits.Add(1)
		}
	}()
	wg.Wait()
	if hits.Load() != 2 {
		t.Fatalf("PredTrigger pair summing to 10 should hit, got %d", hits.Load())
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestResetReleasesPostponedWaiters(t *testing.T) {
	e := newTestEngine()
	e.DefaultTimeout = time.Hour // Reset, not the timer, must release
	obj := new(int)
	done := make(chan bool, 1)
	go func() {
		done <- e.TriggerHere(NewConflictTrigger("bp", obj), true, Options{})
	}()
	waitFor(t, "goroutine to be postponed", func() bool { return e.PostponedCount("bp") > 0 })
	e.Reset()
	if n := e.PostponedCount("bp"); n != 0 {
		t.Fatalf("PostponedCount after Reset = %d, want 0", n)
	}
	if got := e.Stats("bp").Arrivals(); got != 0 {
		t.Fatalf("stats not cleared by Reset: arrivals = %d", got)
	}
	select {
	case hit := <-done:
		if hit {
			t.Fatal("cancelled waiter reported a hit")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Reset did not release the postponed waiter")
	}
}

func TestManyPairsStress(t *testing.T) {
	e := newTestEngine()
	e.DefaultTimeout = 2 * time.Second
	const pairs = 32
	objs := make([]*int, pairs)
	for i := range objs {
		objs[i] = new(int)
	}
	var hits atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < pairs; i++ {
		obj := objs[i]
		wg.Add(2)
		go func() {
			defer wg.Done()
			if e.TriggerHere(NewConflictTrigger("stress", obj), true, Options{}) {
				hits.Add(1)
			}
		}()
		go func() {
			defer wg.Done()
			if e.TriggerHere(NewConflictTrigger("stress", obj), false, Options{}) {
				hits.Add(1)
			}
		}()
	}
	wg.Wait()
	if hits.Load() != 2*pairs {
		t.Fatalf("stress: hits = %d, want %d", hits.Load(), 2*pairs)
	}
	if got := e.Stats("stress").Hits(); got != pairs {
		t.Fatalf("stress: breakpoint hits = %d, want %d", got, pairs)
	}
}

func TestStatsCounters(t *testing.T) {
	e := newTestEngine()
	e.DefaultTimeout = 10 * time.Millisecond
	obj := new(int)
	e.TriggerOutcome(NewConflictTrigger("s", obj), true, Options{ExtraLocal: func() bool { return false }})
	e.TriggerOutcome(NewConflictTrigger("s", obj), true, Options{})
	st := e.Stats("s")
	if st.Arrivals() != 2 {
		t.Errorf("Arrivals = %d, want 2", st.Arrivals())
	}
	if st.LocalFalses() != 1 {
		t.Errorf("LocalFalses = %d, want 1", st.LocalFalses())
	}
	if st.Postpones() != 1 {
		t.Errorf("Postpones = %d, want 1", st.Postpones())
	}
	if st.Timeouts() != 1 {
		t.Errorf("Timeouts = %d, want 1", st.Timeouts())
	}
	if st.TotalWait() < 5*time.Millisecond {
		t.Errorf("TotalWait = %v, want >= ~10ms", st.TotalWait())
	}
	if st.MaxWait() < st.TotalWait()/2 {
		t.Errorf("MaxWait = %v vs TotalWait %v", st.MaxWait(), st.TotalWait())
	}
	if e.Report() == "" {
		t.Error("Report is empty")
	}
}

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{
		OutcomeDisabled:   "disabled",
		OutcomeLocalFalse: "local-false",
		OutcomeTimeout:    "timeout",
		OutcomeHit:        "hit",
		Outcome(99):       "unknown",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", o, got, want)
		}
	}
}

func TestAllStatsSorted(t *testing.T) {
	e := newTestEngine()
	e.Stats("zz")
	e.Stats("aa")
	e.Stats("mm")
	all := e.AllStats()
	if len(all) != 3 || all[0].Name() != "aa" || all[1].Name() != "mm" || all[2].Name() != "zz" {
		t.Fatalf("AllStats not sorted: %v", all)
	}
}

func TestThreeWaitersOldestMatchedFirst(t *testing.T) {
	e := newTestEngine()
	obj := new(int)
	results := make(chan int, 2)
	// Two second-action waiters arrive, then one first-action arrives;
	// the oldest waiter must be the one matched.
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			if e.TriggerHere(NewConflictTrigger("order", obj), false, Options{Timeout: time.Hour}) {
				results <- i
			} else {
				results <- -1
			}
		}()
		waitFor(t, "waiter to be postponed", func() bool { return e.PostponedCount("order") == i+1 })
	}
	if !e.TriggerHere(NewConflictTrigger("order", obj), true, Options{}) {
		t.Fatal("first-action side did not hit")
	}
	select {
	case first := <-results:
		if first != 0 {
			t.Fatalf("matched waiter = %d, want oldest (0)", first)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("matched waiter never returned")
	}
	// Release the remaining waiter promptly via Reset.
	e.Reset()
	select {
	case second := <-results:
		if second != -1 {
			t.Fatalf("unmatched waiter returned %d, want -1", second)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Reset did not release the remaining waiter")
	}
}

func TestDefaultEngineHelpers(t *testing.T) {
	Reset()
	SetEnabled(true)
	if !Enabled() {
		t.Fatal("default engine should be enabled")
	}
	if Default() == nil {
		t.Fatal("Default returned nil")
	}
	obj := new(int)
	var wg sync.WaitGroup
	var h1, h2 bool
	wg.Add(2)
	go func() {
		defer wg.Done()
		h1 = TriggerHere(NewConflictTrigger("default-bp", obj), true, 500*time.Millisecond)
	}()
	go func() {
		defer wg.Done()
		h2 = TriggerHereOpts(NewConflictTrigger("default-bp", obj), false, Options{Timeout: 500 * time.Millisecond})
	}()
	wg.Wait()
	if !h1 || !h2 {
		t.Fatalf("default engine pair did not hit: %v %v", h1, h2)
	}
	ran := false
	TriggerHereAnd(NewConflictTrigger("default-solo", obj), true, Options{Timeout: 5 * time.Millisecond}, func() { ran = true })
	if !ran {
		t.Fatal("TriggerHereAnd must run action on timeout")
	}
	Reset()
}
