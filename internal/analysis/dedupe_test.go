package analysis_test

import (
	"path/filepath"
	"testing"

	"cbreak/internal/analysis"
	"cbreak/internal/analysis/load"
	"cbreak/internal/analysis/timerleak"
)

// Overlapping unit sets (the same package loaded twice — directly and
// as a dependency, or test and non-test variants) must not double the
// findings: identical diagnostics collapse before rendering.
func TestDuplicateDiagnosticsCollapse(t *testing.T) {
	dir := filepath.Join("timerleak", "testdata", "a")
	loader, err := load.New(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	once, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	twice, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture again: %v", err)
	}

	runner := &analysis.Runner{Analyzers: []*analysis.Analyzer{timerleak.Analyzer}}
	base, err := runner.Run(once)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(base.Findings) == 0 {
		t.Fatal("fixture produced no findings; the test needs at least one")
	}
	dup, err := runner.Run(append(append([]*load.Unit(nil), once...), twice...))
	if err != nil {
		t.Fatalf("run with duplicated units: %v", err)
	}
	if len(dup.Findings) != len(base.Findings) {
		t.Errorf("findings with duplicated units = %d, want %d (identical diagnostics must collapse)",
			len(dup.Findings), len(base.Findings))
	}
	if len(dup.Suppressed) != len(base.Suppressed) {
		t.Errorf("suppressed with duplicated units = %d, want %d",
			len(dup.Suppressed), len(base.Suppressed))
	}
}
