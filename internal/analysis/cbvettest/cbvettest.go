// Package cbvettest is the fixture harness for the cbvet analyzers,
// modeled on golang.org/x/tools/go/analysis/analysistest: a fixture is
// a directory of Go files under testdata/ whose lines carry
//
//	// want "substring"
//
// expectations. The runner loads the fixture (through the same loader
// the real tool uses, so fixtures may import cbreak packages), runs the
// analyzer with suppressions applied, and diffs reported findings
// against the expectations line by line. A fixture line with a
// //cbvet:ignore directive and no want comment therefore doubles as the
// suppression test: if filtering breaks, the finding surfaces as
// unexpected.
package cbvettest

import (
	"strings"
	"testing"

	"cbreak/internal/analysis"
	"cbreak/internal/analysis/load"
)

// want is one expectation: a substring that must appear in a finding's
// message on a given file line.
type want struct {
	file string
	line int
	sub  string
	hit  bool
}

// Run loads dir as one fixture package and checks analyzer a against
// its // want comments. It returns the result for extra assertions.
func Run(t *testing.T, a *analysis.Analyzer, dir string) *analysis.Result {
	t.Helper()
	loader, err := load.New(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	units, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(units) == 0 {
		t.Fatalf("fixture %s holds no Go package", dir)
	}
	for _, u := range units {
		for _, e := range u.TypeErrors {
			t.Errorf("fixture type error: %v", e)
		}
	}

	runner := &analysis.Runner{Analyzers: []*analysis.Analyzer{a}}
	res, err := runner.Run(units)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, units)
	for _, f := range res.Findings {
		if !match(wants, f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding containing %q, got none", w.file, w.line, w.sub)
		}
	}
	return res
}

func match(wants []*want, f analysis.Finding) bool {
	for _, w := range wants {
		if !w.hit && w.file == f.File && w.line == f.Line && strings.Contains(f.Message, w.sub) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants scans fixture comments for // want "..." expectations
// (several per line allowed).
func collectWants(t *testing.T, units []*load.Unit) []*want {
	t.Helper()
	var out []*want
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					idx := strings.Index(text, "// want ")
					if idx < 0 {
						if idx = strings.Index(text, "//want "); idx < 0 {
							continue
						}
					}
					pos := u.Fset.Position(c.Pos())
					rest := text[idx:]
					rest = rest[strings.Index(rest, "want ")+len("want "):]
					subs, err := splitQuoted(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q: %v", pos.Filename, pos.Line, text, err)
					}
					for _, s := range subs {
						out = append(out, &want{file: pos.Filename, line: pos.Line, sub: s})
					}
				}
			}
		}
	}
	return out
}

// splitQuoted parses a sequence of double-quoted Go strings.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			break
		}
		end := 1
		for end < len(s) && s[end] != '"' {
			if s[end] == '\\' {
				end++
			}
			end++
		}
		if end >= len(s) {
			return nil, errUnterminated
		}
		out = append(out, strings.ReplaceAll(s[1:end], `\"`, `"`))
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}

type strErr string

func (e strErr) Error() string { return string(e) }

const errUnterminated = strErr("unterminated quoted string")
