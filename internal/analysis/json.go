package analysis

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"sort"
)

// Finding is one diagnostic resolved to a file position — the unit of
// the -json artifact CI uploads next to BENCH_engine.json.
type Finding struct {
	// Analyzer is the reporting analyzer ("cbvet" for malformed
	// suppression directives).
	Analyzer string `json:"analyzer"`
	// File is the path as the loader saw it; Report rewrites it
	// relative to a root for stable artifacts.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message is the human-readable diagnostic.
	Message string `json:"message"`
}

// String formats the finding the way go vet does.
func (f Finding) String() string {
	return f.File + ":" + itoa(f.Line) + ":" + itoa(f.Col) + ": " + f.Analyzer + ": " + f.Message
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func toFinding(fset *token.FileSet, d Diagnostic) Finding {
	pos := fset.Position(d.Pos)
	return Finding{
		Analyzer: d.Analyzer,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  d.Message,
	}
}

// Report is the top-level -json document.
type Report struct {
	Tool      string    `json:"tool"`
	Version   int       `json:"version"`
	Analyzers []string  `json:"analyzers"`
	Findings  []Finding `json:"findings"`
	// Suppressed counts diagnostics silenced by //cbvet:ignore; the
	// artifact records the volume so a quietly growing pile of
	// suppressions is visible in CI history.
	Suppressed int `json:"suppressed"`
}

// NewReport assembles the JSON document for a result. File paths are
// rewritten relative to root (when possible) so artifacts are stable
// across checkouts.
func NewReport(analyzers []*Analyzer, res *Result, root string) Report {
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	findings := make([]Finding, len(res.Findings))
	for i, f := range res.Findings {
		f.File = relativize(root, f.File)
		findings[i] = f
	}
	return Report{
		Tool:       "cbvet",
		Version:    1,
		Analyzers:  names,
		Findings:   findings,
		Suppressed: len(res.Suppressed),
	}
}

// Encode writes the report as indented JSON.
func (r Report) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

func relativize(root, file string) string {
	if root == "" {
		return file
	}
	rel, err := filepath.Rel(root, file)
	if err != nil || rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator) {
		return file
	}
	return filepath.ToSlash(rel)
}
