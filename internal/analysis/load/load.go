// Package load type-checks Go packages from source without the go/packages
// machinery, so the cbvet analyzers can run in a hermetic environment (no
// module proxy, no pre-built export data). Import paths resolve two ways:
// paths inside this module map to directories under the module root, and
// everything else is treated as standard library and loaded from
// GOROOT/src (with the GOROOT/src/vendor fallback the gc toolchain uses
// for the vendored golang.org/x dependencies of net/http and friends).
//
// A Loader caches type-checked dependencies, so loading every package in
// the repository type-checks each dependency once. Target packages are
// parsed with comments (the suppression scanner needs them) and include
// in-package _test.go files; external test packages (package foo_test)
// come back as their own unit with the " [xtest]" path suffix.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one package ready for analysis: syntax, type information, and
// where it came from.
type Unit struct {
	// Path is the unit's import path ("cbreak/internal/apps/mysql"); for
	// fixture directories outside the module it is synthesized from the
	// directory name. External test packages get a " [xtest]" suffix.
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Files are the parsed files, comments included, in file-name order.
	Files []*ast.File
	// Fset is the loader-wide file set (shared across units).
	Fset *token.FileSet
	// Pkg and Info are the type-checker's output. Pkg is non-nil even
	// when TypeErrors is not empty; Info maps are always populated.
	Pkg  *types.Package
	Info *types.Info
	// TypeErrors collects soft type-check failures (the analyzers run
	// anyway, like go vet does with partial type information).
	TypeErrors []error
}

// Loader loads and caches packages. The zero value is not usable; call
// New.
type Loader struct {
	Fset    *token.FileSet
	ctxt    build.Context
	modRoot string
	modPath string
	deps    map[string]*types.Package // import path -> dep package (no test files)
	loading map[string]bool           // import cycle guard
}

// New returns a loader rooted at the module containing dir (dir itself
// when no go.mod is found above it).
func New(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath := findModule(abs)
	ctxt := build.Default
	// Force the pure-Go file sets: cgo variants cannot be type-checked
	// from source, and every package this module touches has a pure-Go
	// fallback.
	ctxt.CgoEnabled = false
	return &Loader{
		Fset:    token.NewFileSet(),
		ctxt:    ctxt,
		modRoot: root,
		modPath: modPath,
		deps:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}, nil
}

// findModule walks up from dir looking for go.mod; it returns the module
// root and module path, or dir and its base name when none exists.
func findModule(dir string) (root, modPath string) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if after, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(after)
				}
			}
			return d, filepath.Base(d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir, filepath.Base(dir)
		}
		d = parent
	}
}

// ModuleRoot returns the module root directory the loader resolves
// module-internal imports against.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// ModulePath returns the module path ("cbreak").
func (l *Loader) ModulePath() string { return l.modPath }

// Import implements types.Importer for dependency resolution. It
// type-checks dependencies from source, without test files, and caches
// the result.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.deps[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	dir, err := l.resolveDir(path)
	if err != nil {
		return nil, err
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("resolving %q: %w", path, err)
	}
	files, err := l.parse(dir, bp.GoFiles, 0)
	if err != nil {
		return nil, err
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("type-checking %q: %w", path, err)
	}
	l.deps[path] = pkg
	return pkg, nil
}

// resolveDir maps an import path to a source directory.
func (l *Loader) resolveDir(path string) (string, error) {
	if path == l.modPath {
		return l.modRoot, nil
	}
	if after, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, filepath.FromSlash(after)), nil
	}
	goroot := l.ctxt.GOROOT
	for _, dir := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("cannot resolve import %q (not in module %s or GOROOT)", path, l.modPath)
}

func (l *Loader) parse(dir string, names []string, mode parser.Mode) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadDir loads the package in dir as an analysis unit (comments kept,
// in-package test files included). When the directory also contains an
// external test package, a second unit with the " [xtest]" suffix is
// returned after the primary one.
func (l *Loader) LoadDir(dir string) ([]*Unit, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	bp, err := l.ctxt.ImportDir(abs, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); nogo {
			return nil, nil
		}
		return nil, err
	}
	path := l.importPathFor(abs)
	var units []*Unit
	names := append(append([]string{}, bp.GoFiles...), bp.TestGoFiles...)
	sort.Strings(names)
	if len(names) > 0 {
		u, err := l.check(path, abs, names)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if len(bp.XTestGoFiles) > 0 {
		names := append([]string{}, bp.XTestGoFiles...)
		sort.Strings(names)
		u, err := l.check(path+" [xtest]", abs, names)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

func (l *Loader) check(path, dir string, names []string) (*Unit, error) {
	files, err := l.parse(dir, names, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	u := &Unit{Path: path, Dir: dir, Files: files, Fset: l.Fset, Info: info}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { u.TypeErrors = append(u.TypeErrors, err) },
	}
	// Check never returns a nil package with a custom Error func; type
	// errors land in TypeErrors and analysis proceeds on what resolved.
	u.Pkg, _ = conf.Check(strings.TrimSuffix(path, " [xtest]"), l.Fset, files, info)
	return u, nil
}

// importPathFor synthesizes the unit import path for a directory: the
// module-relative path when inside the module, the base name otherwise
// (test fixtures).
func (l *Loader) importPathFor(dir string) string {
	if rel, err := filepath.Rel(l.modRoot, dir); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		if rel == "." {
			return l.modPath
		}
		return l.modPath + "/" + filepath.ToSlash(rel)
	}
	return filepath.Base(dir)
}

// Load expands the given patterns and loads every matching package.
// Supported patterns: a directory path, an import path inside the
// module, and the "./..." / "dir/..." recursive forms. Directories named
// testdata, vendor, or starting with "." or "_" are skipped during
// expansion, matching the go tool.
func (l *Loader) Load(baseDir string, patterns ...string) ([]*Unit, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if abs, err := filepath.Abs(d); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		switch {
		case strings.HasSuffix(pat, "..."):
			root := strings.TrimSuffix(pat, "...")
			root = strings.TrimSuffix(root, "/")
			if root == "" || root == "." {
				root = baseDir
			} else if !filepath.IsAbs(root) {
				root = filepath.Join(baseDir, root)
			}
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(p)
				return nil
			})
			if err != nil {
				return nil, err
			}
		case strings.HasPrefix(pat, l.modPath+"/") || pat == l.modPath:
			d, err := l.resolveDir(pat)
			if err != nil {
				return nil, err
			}
			add(d)
		default:
			if filepath.IsAbs(pat) {
				add(pat)
			} else {
				add(filepath.Join(baseDir, pat))
			}
		}
	}
	var units []*Unit
	for _, d := range dirs {
		us, err := l.LoadDir(d)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", d, err)
		}
		units = append(units, us...)
	}
	return units, nil
}
