// Package analysis is a self-contained analogue of the
// golang.org/x/tools/go/analysis framework: named analyzers that walk
// type-checked syntax and report positioned diagnostics, a runner that
// drives them over loaded packages, //cbvet:ignore suppressions, and a
// JSON findings artifact. It exists because this repository builds in a
// hermetic environment where x/tools is unavailable; the API mirrors the
// real framework closely enough that the analyzers would port with
// little more than an import change.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"

	"cbreak/internal/analysis/load"
)

// Analyzer is one static check. Run is invoked once per package unit;
// the optional NewState/Finish pair supports program-level analyses
// (breakpoint-key pairing, the cross-package lock-order graph) that need
// to see every unit before reporting.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //cbvet:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by cbvet -list.
	Doc string
	// Run analyzes one unit, reporting diagnostics through the pass.
	Run func(*Pass) error
	// NewState, if non-nil, is called once per runner invocation; the
	// value is shared by every Pass of this analyzer via Pass.State.
	NewState func() any
	// Finish, if non-nil, runs after every unit's Run with the shared
	// state, for diagnostics that need the whole program.
	Finish func(*Finish) error
}

// Pass carries one unit through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Unit     *load.Unit
	// State is the analyzer's shared state (nil unless NewState is set).
	State any

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finish is the context handed to an analyzer's Finish hook.
type Finish struct {
	Analyzer *Analyzer
	State    any
	// Fset positions every diagnostic reported from any unit.
	Fset *token.FileSet
	// Partial reports that the runner saw only a slice of the program
	// (one compilation unit under go vet -vettool). Whole-program
	// diagnostics such as "this key has no partner anywhere" must be
	// skipped when Partial is true.
	Partial bool

	report func(Diagnostic)
}

// Reportf records a program-level diagnostic at pos.
func (f *Finish) Reportf(pos token.Pos, format string, args ...any) {
	f.report(Diagnostic{Analyzer: f.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned in the runner's file set.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Runner drives a set of analyzers over loaded units and applies
// suppression directives.
type Runner struct {
	Analyzers []*Analyzer
	// Known lists analyzer names valid in //cbvet:ignore directives
	// beyond the ones being run, so `cbvet -run timerleak` over a file
	// with a legitimate lockorder suppression does not report that
	// directive as a typo.
	Known []string
	// Partial marks single-unit invocations (the vettool protocol);
	// see Finish.Partial.
	Partial bool
}

// Result is one Run's outcome.
type Result struct {
	// Findings are the surviving diagnostics, sorted by position.
	Findings []Finding
	// Suppressed are the diagnostics silenced by //cbvet:ignore
	// directives, in the same order; kept so bridge tests and audits
	// can see intentional sites.
	Suppressed []Finding
	// BadDirectives are malformed //cbvet:ignore comments (missing
	// reason, unknown analyzer); they surface as findings too.
	BadDirectives []Finding
}

// Run executes every analyzer over every unit, then the Finish hooks,
// then suppression filtering. Analyzer errors (not diagnostics) abort
// the run.
func (r *Runner) Run(units []*load.Unit) (*Result, error) {
	if len(units) == 0 {
		return &Result{}, nil
	}
	fset := units[0].Fset
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }

	known := make(map[string]bool, len(r.Analyzers)+len(r.Known))
	for _, a := range r.Analyzers {
		known[a.Name] = true
	}
	for _, n := range r.Known {
		known[n] = true
	}

	sup := newSuppressions(known)
	for _, u := range units {
		sup.scanUnit(u)
	}

	for _, a := range r.Analyzers {
		var state any
		if a.NewState != nil {
			state = a.NewState()
		}
		for _, u := range units {
			pass := &Pass{Analyzer: a, Unit: u, State: state, report: report}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, u.Path, err)
			}
		}
		if a.Finish != nil {
			fin := &Finish{Analyzer: a, State: state, Fset: fset, Partial: r.Partial, report: report}
			if err := a.Finish(fin); err != nil {
				return nil, fmt.Errorf("%s: finish: %w", a.Name, err)
			}
		}
	}

	res := &Result{}
	// Identical diagnostics collapse to one finding: whole-program
	// Finish hooks fed overlapping unit sets (a package loaded both
	// directly and as a dependency, or test and non-test variants)
	// otherwise report the same position twice, and the JSON artifact
	// double-counts.
	emitted := make(map[Finding]bool, len(diags))
	for _, d := range diags {
		f := toFinding(fset, d)
		if emitted[f] {
			continue
		}
		emitted[f] = true
		if sup.covers(f.File, f.Line, d.Analyzer) {
			res.Suppressed = append(res.Suppressed, f)
		} else {
			res.Findings = append(res.Findings, f)
		}
	}
	res.BadDirectives = sup.malformed
	res.Findings = append(res.Findings, sup.malformed...)
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	return res, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// Inspect walks every file of the pass's unit in depth-first order,
// calling fn for each node; fn returning false prunes the subtree.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Unit.Files {
		ast.Inspect(f, fn)
	}
}
