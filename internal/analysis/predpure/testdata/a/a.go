// Fixture for the predpure analyzer.
package a

import (
	"cbreak/internal/core"
	"cbreak/internal/locks"
)

var mu = locks.NewMutex("fix.mu")

func impure(counter *int, ch chan int, done chan struct{}) {
	n := 0
	_ = core.Options{ExtraLocal: func() bool {
		n++ // want "writes captured variable n"
		return n < 3
	}}
	_ = core.Options{ExtraLocal: func() bool {
		ch <- 1 // want "sends on a channel"
		return true
	}}
	_ = core.Options{ExtraLocal: func() bool {
		<-done // want "receives from a channel"
		return true
	}}
	_ = core.Options{ExtraLocal: func() bool {
		mu.Lock() // want "lock acquisition inside a predicate"
		defer mu.Unlock()
		return true
	}}
	_ = core.Options{ExtraLocal: func() bool {
		go func() {}() // want "spawns a goroutine"
		return true
	}}
	_ = core.Options{ExtraLocal: func() bool {
		close(done) // want "closes a channel"
		return true
	}}
	_ = core.Options{ExtraLocal: func() bool {
		return core.TriggerHere(core.NewConflictTrigger("fix.reenter", nil), true, 0) // want "re-enters the trigger API"
	}}
}

func impurePredTrigger(flags map[string]bool) {
	_ = &core.PredTrigger{
		Local: func() bool {
			flags["seen"] = true // want "writes captured variable flags"
			return true
		},
	}
	_ = core.NewPredTrigger("fix.pred", nil,
		func() bool {
			delete(flags, "seen")
			flags["again"] = true // want "writes captured variable flags"
			return true
		},
		nil)
}

func tolerated(hits *int) {
	_ = core.Options{ExtraLocal: func() bool {
		//cbvet:ignore predpure deliberate: this demo counts predicate evaluations to show BTrigger bias
		*hits++
		return true
	}}
}

// Negative: predicates that only read captured state are the intended
// use.
func pure(ready *bool, depth int) {
	_ = core.Options{ExtraLocal: func() bool { return *ready && depth > 2 }}
	local := 0
	_ = core.Options{ExtraLocal: func() bool {
		sum := local + depth // writing sum is fine: declared inside
		return sum > 0
	}}
	_ = &core.PredTrigger{Local: func() bool { return depth < 10 }}
}
