package predpure_test

import (
	"testing"

	"cbreak/internal/analysis/cbvettest"
	"cbreak/internal/analysis/predpure"
)

func TestFixtures(t *testing.T) {
	res := cbvettest.Run(t, predpure.Analyzer, "testdata/a")
	if n := len(res.Suppressed); n != 1 {
		t.Errorf("suppressed findings = %d, want 1 (the //cbvet:ignore site)", n)
	}
}
