// Package predpure checks that breakpoint predicate closures are
// side-effect-free. Predicates (Options.ExtraLocal and the Local/Global
// closures of PredTrigger) run inside the engine — under a shard's lock,
// possibly many times per arrival, and concurrently with the partner
// side. A predicate that writes captured state biases or races the very
// interleaving the breakpoint is trying to pin; one that blocks on a
// channel or acquires a lock can deadlock the engine itself; one that
// re-enters the trigger API can self-postpone forever. All of these are
// silent at runtime, which is exactly why they are checked statically.
package predpure

import (
	"go/ast"
	"go/token"
	"go/types"

	"cbreak/internal/analysis"
	"cbreak/internal/analysis/astq"
)

// Analyzer flags side effects inside breakpoint predicate closures.
var Analyzer = &analysis.Analyzer{
	Name: "predpure",
	Doc: "breakpoint predicates (Options.ExtraLocal, PredTrigger Local/Global) must be " +
		"side-effect-free: no writes to captured variables, no channel operations, no " +
		"lock acquisition, no goroutines, no re-entrant trigger calls",
	Run: run,
}

const (
	corePath  = astq.ModulePath + "/internal/core"
	locksPath = astq.ModulePath + "/internal/locks"
)

func run(pass *analysis.Pass) error {
	info := pass.Unit.Info
	seen := map[*ast.FuncLit]bool{}
	check := func(role string, e ast.Expr) {
		lit, ok := ast.Unparen(e).(*ast.FuncLit)
		if !ok || seen[lit] {
			return
		}
		seen[lit] = true
		checkPredicate(pass, role, lit)
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil {
				return true
			}
			switch {
			case astq.IsPkgType(t, corePath, "Options"):
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if k, ok := kv.Key.(*ast.Ident); ok && k.Name == "ExtraLocal" {
							check("ExtraLocal predicate", kv.Value)
						}
					}
				}
			case astq.IsPkgType(t, corePath, "PredTrigger"):
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if k, ok := kv.Key.(*ast.Ident); ok && (k.Name == "Local" || k.Name == "Global") {
							check(k.Name+" predicate", kv.Value)
						}
					}
				}
			}
		case *ast.CallExpr:
			fn := astq.Callee(info, n)
			if fn == nil || fn.Name() != "NewPredTrigger" {
				return true
			}
			if p := astq.FuncPkgPath(fn); p != corePath && p != astq.ModulePath {
				return true
			}
			if len(n.Args) >= 4 {
				check("Local predicate", n.Args[2])
				check("Global predicate", n.Args[3])
			}
		}
		return true
	})
	return nil
}

// checkPredicate walks one predicate closure, reporting every construct
// that can bias, block, or re-enter the engine.
func checkPredicate(pass *analysis.Pass, role string, lit *ast.FuncLit) {
	info := pass.Unit.Info

	captured := func(e ast.Expr) (string, bool) {
		id := astq.BaseIdent(e)
		if id == nil || id.Name == "_" {
			return "", false
		}
		obj := info.Uses[id]
		if obj == nil {
			return "", false
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return "", false
		}
		// Declared outside the closure's extent = captured.
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return "", false
		}
		return id.Name, true
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if name, ok := captured(lhs); ok {
					pass.Reportf(n.Pos(), "%s writes captured variable %s; predicates run inside the engine and must be side-effect-free", role, name)
				}
			}
		case *ast.IncDecStmt:
			if name, ok := captured(n.X); ok {
				pass.Reportf(n.Pos(), "%s writes captured variable %s; predicates run inside the engine and must be side-effect-free", role, name)
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "%s sends on a channel; a blocked predicate wedges the engine shard", role)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "%s receives from a channel; a blocked predicate wedges the engine shard", role)
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "%s blocks in select; a blocked predicate wedges the engine shard", role)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s spawns a goroutine; predicates may run many times per arrival and must be side-effect-free", role)
		case *ast.CallExpr:
			checkPredicateCall(pass, role, n)
		}
		return true
	})
}

func checkPredicateCall(pass *analysis.Pass, role string, call *ast.CallExpr) {
	info := pass.Unit.Info
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "close" {
			pass.Reportf(call.Pos(), "%s closes a channel; predicates must be side-effect-free", role)
			return
		}
	}
	fn := astq.Callee(info, call)
	if fn == nil {
		return
	}
	pkg := astq.FuncPkgPath(fn)
	recv := astq.RecvTypeName(fn)
	switch pkg {
	case locksPath:
		switch fn.Name() {
		case "Lock", "LockAt", "TryLock", "RLock", "RLockAt", "With", "WithAt",
			"WithRead", "WithWrite", "Wait", "WaitAt", "WaitTimeout", "WaitTimeoutAt":
			pass.Reportf(call.Pos(), "%s acquires %s.%s; lock acquisition inside a predicate can deadlock against the engine and biases BTrigger", role, recv, fn.Name())
		}
	case "sync":
		switch fn.Name() {
		case "Lock", "RLock", "Wait":
			pass.Reportf(call.Pos(), "%s acquires sync.%s.%s inside a predicate; this can deadlock against the engine", role, recv, fn.Name())
		}
	case corePath, astq.ModulePath:
		if two, multi := triggerish(fn.Name()); two || multi {
			pass.Reportf(call.Pos(), "%s re-enters the trigger API (%s); a predicate that postpones can deadlock the shard", role, fn.Name())
		}
	}
}

func triggerish(name string) (bool, bool) {
	switch name {
	case "TriggerHere", "TriggerHereOpts", "TriggerHereAnd", "Trigger", "TriggerAnd", "TriggerOutcome":
		return true, false
	case "TriggerHereMulti", "TriggerHereMultiAnd", "TriggerMulti", "TriggerMultiAnd":
		return false, true
	}
	return false, false
}
