// Package rawsync flags direct sync.Mutex / sync.RWMutex use in the
// benchmark application packages (internal/apps/...). Raw locks are
// invisible to the internal/locks registry: they produce no wait edges,
// so the runtime wait-graph supervisor (PR 4) cannot see cycles through
// them, lock-class predicates cannot match them, and the detect package
// cannot report their contention. Application code must use the
// internal/locks wrappers; infrastructure packages (the engine, the
// locks package itself) are out of scope.
package rawsync

import (
	"go/ast"
	"go/types"
	"strings"

	"cbreak/internal/analysis"
)

// Analyzer flags sync.Mutex/sync.RWMutex in packages with an "apps"
// path element.
var Analyzer = &analysis.Analyzer{
	Name: "rawsync",
	Doc: "raw sync.Mutex/sync.RWMutex in internal/apps is invisible to wait-edge " +
		"tracking and the wait-graph supervisor; use the internal/locks wrappers",
	Run: run,
}

// inScope reports whether the unit is an application package: any
// import-path element equal to "apps" (which also matches the analyzer
// test fixtures, whose synthesized paths end in "apps").
func inScope(path string) bool {
	path = strings.TrimSuffix(path, " [xtest]")
	for _, el := range strings.Split(path, "/") {
		if el == "apps" {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Unit.Path) {
		return nil
	}
	info := pass.Unit.Info
	seen := map[*ast.SelectorExpr]bool{}
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || seen[sel] {
			return true
		}
		seen[sel] = true
		tn, ok := info.Uses[sel.Sel].(*types.TypeName)
		if !ok || tn.Pkg() == nil || tn.Pkg().Path() != "sync" {
			return true
		}
		if tn.Name() == "Mutex" || tn.Name() == "RWMutex" {
			pass.Reportf(sel.Pos(),
				"raw sync.%s in an apps package is invisible to wait-edge tracking; use the internal/locks wrappers (locks.NewMutex / locks.NewRWMutex)",
				tn.Name())
		}
		return true
	})
	return nil
}
