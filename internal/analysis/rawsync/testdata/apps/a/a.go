// Fixture for the rawsync analyzer: the path contains an "apps"
// element, so raw sync mutexes are in scope here.
package a

import "sync"

type guarded struct {
	mu  sync.Mutex   // want "raw sync.Mutex"
	rw  sync.RWMutex // want "raw sync.RWMutex"
	n   int
	set map[string]bool
}

func local() {
	var mu sync.Mutex // want "raw sync.Mutex"
	mu.Lock()
	defer mu.Unlock()
}

type tolerated struct {
	//cbvet:ignore rawsync guards test-only bookkeeping that never participates in a modeled deadlock
	mu sync.Mutex
	n  int
}

// Negative: sync types other than mutexes stay legal in apps.
type fine struct {
	wg   sync.WaitGroup
	once sync.Once
}
