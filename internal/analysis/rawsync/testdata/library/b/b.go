// Fixture for the rawsync analyzer: no "apps" path element, so raw
// sync mutexes are out of scope and nothing is reported.
package b

import "sync"

type fine struct {
	mu sync.Mutex
	rw sync.RWMutex
}
