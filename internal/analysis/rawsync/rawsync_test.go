package rawsync_test

import (
	"testing"

	"cbreak/internal/analysis/cbvettest"
	"cbreak/internal/analysis/rawsync"
)

func TestAppsFixture(t *testing.T) {
	res := cbvettest.Run(t, rawsync.Analyzer, "testdata/apps/a")
	if n := len(res.Suppressed); n != 1 {
		t.Errorf("suppressed findings = %d, want 1 (the //cbvet:ignore site)", n)
	}
}

func TestOutOfScopeFixture(t *testing.T) {
	res := cbvettest.Run(t, rawsync.Analyzer, "testdata/library/b")
	if n := len(res.Findings); n != 0 {
		t.Errorf("findings outside apps = %d, want 0: %v", n, res.Findings)
	}
}
