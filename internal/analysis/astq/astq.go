// Package astq holds the small AST/type query helpers shared by the
// cbvet analyzers: resolving callees to (package, receiver, name)
// triples, extracting constant string arguments, and unwinding selector
// chains to their base identifier.
package astq

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ModulePath is the import-path prefix of this module's packages. The
// analyzers match callees against the internal packages both through
// the facade and directly.
const ModulePath = "cbreak"

// Callee resolves the called function of a call expression, looking
// through parentheses. It returns nil for calls of function values,
// builtins, and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// FuncPkgPath returns the import path of the package declaring fn, or
// "" for builtins.
func FuncPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// RecvTypeName returns the bare name of fn's receiver type ("Mutex" for
// func (m *Mutex) Lock), or "" for package-level functions.
func RecvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// Symbol returns a stable cross-package key for fn:
// "pkg/path.Recv.Name" for methods, "pkg/path.Name" otherwise.
func Symbol(fn *types.Func) string {
	var b strings.Builder
	b.WriteString(FuncPkgPath(fn))
	b.WriteString(".")
	if r := RecvTypeName(fn); r != "" {
		b.WriteString(r)
		b.WriteString(".")
	}
	b.WriteString(fn.Name())
	return b.String()
}

// ConstString evaluates arg to a compile-time string; ok is false for
// anything not constant.
func ConstString(info *types.Info, arg ast.Expr) (string, bool) {
	tv, ok := info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// ConstBool evaluates arg to a compile-time bool.
func ConstBool(info *types.Info, arg ast.Expr) (bool, bool) {
	tv, ok := info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}

// BaseIdent unwinds selectors, indexes, stars, and parens to the
// left-most identifier of an expression ("s" for s.cfg.bps[i].x), or
// nil when the chain roots in a call or literal.
func BaseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// NamedType returns the named type of t, looking through one level of
// pointer.
func NamedType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// IsPkgType reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func IsPkgType(t types.Type, pkgPath, name string) bool {
	named := NamedType(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
