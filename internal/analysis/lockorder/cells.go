package lockorder

import (
	"go/token"
	"sort"
	"strings"

	"cbreak/internal/analysis/load"
)

// This file exports lockorder's collected facts for reuse: the
// conflicts analyzer consumes the same per-function walk (lock
// acquisitions, call sites, memory-cell accesses) and the same
// interprocedural summary fixpoint, but asks a different question of
// the result — not "which acquisition orders cross" but "which cells
// are accessed under inconsistent locksets".

// CellAccess is one static memory-cell access instance: the cell's
// class name, whether it mutates, and the lock classes held around it.
// Accesses reached through calls are expanded interprocedurally: a
// helper's access counts once per calling context, with the caller's
// held locks added (context-insensitive in the callee, like the
// acquisition summaries — a helper locked by every caller still
// contributes its own lock-free instance; suppress such findings with
// a cbvet:ignore directive naming the invariant).
type CellAccess struct {
	// Cell is the cell's class name: the constant NewCell/NewRef name
	// when statically known, the field/variable path otherwise.
	Cell string
	// Write reports whether the access mutates (Store, Add, AtomicAdd,
	// CompareAndSwap).
	Write bool
	// Locks are the lock class names held at the access, sorted.
	Locks []string
	// Pos is the underlying Cell/Ref method call.
	Pos token.Pos
}

// Summary is the shared collection state: feed it units, then read the
// expanded access set. The lockorder and conflicts analyzers each hold
// one as their pass state.
type Summary struct{ st *state }

// NewSummary returns an empty Summary.
func NewSummary() *Summary { return &Summary{st: newState()} }

// Collect folds one loaded unit into the summary.
func (s *Summary) Collect(u *load.Unit) { s.st.collectUnit(u) }

// Cycles returns the lock-order cycles over everything collected.
func (s *Summary) Cycles() []Cycle { return s.st.cycles() }

// CellAccesses returns every static access instance, interprocedurally
// expanded and deduplicated, in position order.
func (s *Summary) CellAccesses() []CellAccess { return s.st.cellAccesses() }

// cellClassName resolves a cell refKey to its display name.
func (st *state) cellClassName(ref string) string {
	if n, ok := st.cellBindings[ref]; ok {
		return n
	}
	for _, p := range []string{"field:", "pkgvar:", "local:"} {
		if rest, ok := strings.CutPrefix(ref, p); ok {
			return rest
		}
	}
	return ref
}

// accessTuple is one summarized access: refKey, mutation flag, held
// lock refKeys (sorted set), anchored at the underlying call.
type accessTuple struct {
	ref   string
	write bool
	locks []string
	pos   token.Pos
}

func tupleKey(t accessTuple) string {
	return t.ref + "\x00" + strings.Join(t.locks, "\x01") + map[bool]string{false: "\x02r", true: "\x02w"}[t.write]
}

// cellAccesses runs the access-expansion fixpoint:
//
//	accs(f) = direct(f) ∪ { t+held(call) : call ∈ pending(f), t ∈ accs(callee) }
//
// mirroring the acquisition fixpoint of allEdges, then flattens every
// function's summary into one deduplicated instance list.
func (st *state) cellAccesses() []CellAccess {
	sums := map[string]map[string]accessTuple{}
	for sym, fi := range st.funcs {
		set := map[string]accessTuple{}
		for _, a := range fi.accesses {
			t := accessTuple{ref: a.ref, write: a.write, locks: sortedSet(a.held), pos: a.pos}
			if prev, ok := set[tupleKey(t)]; !ok || t.pos < prev.pos {
				set[tupleKey(t)] = t
			}
		}
		sums[sym] = set
	}
	for changed := true; changed; {
		changed = false
		for sym, fi := range st.funcs {
			set := sums[sym]
			for _, p := range fi.pending {
				for _, t := range sums[p.callee] {
					merged := accessTuple{
						ref:   t.ref,
						write: t.write,
						locks: sortedSet(append(append([]string(nil), t.locks...), p.held...)),
						pos:   t.pos,
					}
					k := tupleKey(merged)
					// Keep the earliest position per tuple (and keep
					// iterating when it improves, so the minimum
					// propagates through call chains deterministically).
					if prev, ok := set[k]; !ok || merged.pos < prev.pos {
						set[k] = merged
						changed = true
					}
				}
			}
		}
	}

	// Deduplicate across functions, keeping the earliest position per
	// tuple so anchors are deterministic (map iteration order must not
	// pick the representative).
	best := map[string]accessTuple{}
	for _, set := range sums {
		for k, t := range set {
			if prev, ok := best[k]; !ok || t.pos < prev.pos {
				best[k] = t
			}
		}
	}
	out := make([]CellAccess, 0, len(best))
	for _, t := range best {
		locks := make([]string, 0, len(t.locks))
		for _, l := range t.locks {
			locks = append(locks, st.className(l))
		}
		sort.Strings(locks)
		out = append(out, CellAccess{
			Cell:  st.cellClassName(t.ref),
			Write: t.write,
			Locks: locks,
			Pos:   t.pos,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		if out[i].Cell != out[j].Cell {
			return out[i].Cell < out[j].Cell
		}
		return !out[i].Write && out[j].Write
	})
	return out
}

// sortedSet sorts and deduplicates a refKey list.
func sortedSet(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	s := append([]string(nil), in...)
	sort.Strings(s)
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
