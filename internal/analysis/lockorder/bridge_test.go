package lockorder_test

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"cbreak/internal/analysis/load"
	"cbreak/internal/analysis/lockorder"
	"cbreak/internal/apps/mysql"
	"cbreak/internal/core"
	"cbreak/internal/waitgraph"
)

// The static analyzer and the runtime wait-graph supervisor must agree
// on the mysql FLUSH-vs-DML deadlock: the cycle lockorder predicts from
// source alone names the same lock classes the supervisor observes when
// the deadlock actually wedges two goroutines.
func TestStaticCycleMatchesRuntimeWaitGraph(t *testing.T) {
	// Static side: analyze the mysql package and pick out the
	// binlog/catalog cycle.
	loader, err := load.New(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dir := filepath.Join(loader.ModuleRoot(), "internal", "apps", "mysql")
	units, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading mysql package: %v", err)
	}
	var static []string
	for _, c := range lockorder.Cycles(units) {
		for _, class := range c.Classes {
			if class == "mysql.binlog" {
				static = append([]string{}, c.Classes...)
			}
		}
	}
	if static == nil {
		t.Fatal("lockorder found no cycle naming mysql.binlog")
	}
	sort.Strings(static)
	if want := []string{"mysql.binlog", "mysql.catalog"}; strings.Join(static, ",") != strings.Join(want, ",") {
		t.Fatalf("static cycle classes = %v, want %v", static, want)
	}

	// Runtime side: run the repro under a wait-graph supervisor until
	// the deadlock is confirmed, then compare lock-class sets.
	e := core.NewEngine()
	sup := waitgraph.New(e, waitgraph.Config{Interval: time.Millisecond})
	sup.Start()
	defer sup.Stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		mysql.Run(mysql.Config{Engine: e, Bug: mysql.Deadlock, Breakpoint: true,
			Timeout: 2 * time.Second, StallAfter: 1500 * time.Millisecond})
	}()
	select {
	case <-sup.Confirmed():
	case <-time.After(10 * time.Second):
		t.Fatal("wait graph never confirmed the mysql deadlock")
	}
	var runtime []string
	for _, r := range sup.Reports() {
		for _, l := range r.Locks {
			if l == "mysql.binlog" {
				runtime = append([]string{}, r.Locks...)
			}
		}
	}
	if runtime == nil {
		t.Fatalf("no runtime report names mysql.binlog: %v", sup.Reports())
	}
	sort.Strings(runtime)

	if strings.Join(static, ",") != strings.Join(runtime, ",") {
		t.Fatalf("static cycle %v != runtime wait-graph cycle %v", static, runtime)
	}
	<-done
}
