package lockorder_test

import (
	"testing"

	"cbreak/internal/analysis/cbvettest"
	"cbreak/internal/analysis/lockorder"
)

func TestFixtures(t *testing.T) {
	res := cbvettest.Run(t, lockorder.Analyzer, "testdata/a")
	if n := len(res.Suppressed); n != 2 {
		t.Errorf("suppressed findings = %d, want 2 (both edges of the annotated cycle)", n)
	}
}
