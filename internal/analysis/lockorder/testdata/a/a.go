// Fixture for the lockorder analyzer.
package a

import "cbreak/internal/locks"

var (
	alpha = locks.NewMutex("fix.alpha")
	beta  = locks.NewMutex("fix.beta")
	gamma = locks.NewMutex("fix.gamma")
	delta = locks.NewMutex("fix.delta")
	solo  = locks.NewMutex("fix.solo")
)

// Inverted orders: alpha -> beta here, beta -> alpha below.
func forward() {
	alpha.Lock()
	defer alpha.Unlock()
	beta.Lock() // want "lock-order cycle"
	defer beta.Unlock()
}

func backward() {
	beta.Lock()
	defer beta.Unlock()
	alpha.Lock() // want "lock-order cycle"
	defer alpha.Unlock()
}

// The same inversion through an interprocedural edge: grab acquires
// delta while transitively holding gamma.
func viaCallee() {
	gamma.Lock()
	defer gamma.Unlock()
	grab() // want "lock-order cycle"
}

func grab() {
	delta.Lock()
	defer delta.Unlock()
}

func opposite() {
	delta.Lock()
	defer delta.Unlock()
	gamma.Lock() // want "lock-order cycle"
	defer gamma.Unlock()
}

// Suppressed inversion: both edges of a cycle carry a directive.
func toleratedForward() {
	alpha.Lock()
	defer alpha.Unlock()
	//cbvet:ignore lockorder intentional inversion for the suppression fixture
	gamma.Lock()
	defer gamma.Unlock()
}

func toleratedBackward() {
	gamma.Lock()
	defer gamma.Unlock()
	//cbvet:ignore lockorder intentional inversion for the suppression fixture
	alpha.Lock()
	defer alpha.Unlock()
}

// Negative: a consistent order is no cycle, nor is nesting under a
// single lock.
func consistentA() {
	solo.Lock()
	defer solo.Unlock()
	beta.Lock()
	defer beta.Unlock()
}

func consistentB() {
	solo.Lock()
	defer solo.Unlock()
	beta.Lock()
	defer beta.Unlock()
}
