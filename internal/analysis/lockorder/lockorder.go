// Package lockorder builds a static lock-acquisition-order graph over
// internal/locks call sites and reports cycles as potential deadlocks.
// It is the compile-time complement of the runtime wait-graph supervisor
// (internal/waitgraph): the supervisor confirms a cycle that is
// currently wedging live goroutines, this analyzer finds the crossed
// acquisition orders before anything runs, naming the same lock classes
// — a bridge test asserts both name the mysql FLUSH-vs-DML cycle
// identically.
//
// Lock identity is static: a struct field, a package-level variable, or
// a local variable holding a locks.Mutex/RWMutex. Where the mutex is
// created with a constant name (locks.NewMutex("mysql.binlog")), the
// diagnostic uses that runtime name, so static findings line up with
// wait-graph reports and lock-class predicates. Analysis is
// flow-approximate in the usual static-deadlock way: straight-line
// acquisition order per function (branches analyzed independently),
// plus one level of interprocedural propagation through a whole-program
// summary fixpoint ("calling Append acquires mysql.binlog").
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cbreak/internal/analysis"
	"cbreak/internal/analysis/astq"
	"cbreak/internal/analysis/load"
)

// Analyzer reports lock-order cycles.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "static lock-acquisition-order cycles over internal/locks call sites: two " +
		"code paths that acquire the same locks in opposite orders can deadlock",
	Run: func(pass *analysis.Pass) error {
		st := pass.State.(*state)
		st.collectUnit(pass.Unit)
		return nil
	},
	NewState: func() any { return newState() },
	Finish:   finish,
}

const locksPath = astq.ModulePath + "/internal/locks"
const memoryPath = astq.ModulePath + "/internal/memory"

// Edge is one observed acquisition order: a site that acquires To while
// holding From.
type Edge struct {
	// From and To are lock class names: the constant NewMutex name when
	// one is statically known, the field/variable path otherwise.
	From, To string
	// Pos is the acquiring site (the Lock call, or the call through
	// which the acquisition happens).
	Pos token.Pos
	// Via names the callee the acquisition happens through ("" for a
	// direct Lock at the site).
	Via string
}

// Cycle is one lock-order cycle: Classes in cycle order, one Edge per
// hop.
type Cycle struct {
	Classes []string
	Edges   []Edge
}

type state struct {
	// bindings maps a static lock identity (refKey) to the constant
	// name it was created with.
	bindings map[string]string
	// cellBindings maps a static cell/ref identity (refKey) to the
	// constant name it was created with (NewCell/NewRef second arg).
	cellBindings map[string]string
	// funcs maps a function symbol to its collected facts.
	funcs map[string]*funcInfo
	anon  int
}

func newState() *state {
	return &state{
		bindings:     map[string]string{},
		cellBindings: map[string]string{},
		funcs:        map[string]*funcInfo{},
	}
}

type pendingCall struct {
	held   []string
	callee string
	name   string // display name of the callee
	pos    token.Pos
}

type funcInfo struct {
	sym       string
	directAcq []string
	callees   map[string]bool
	edges     []Edge // direct edges, From/To hold refKeys until finish
	pending   []pendingCall
	// accesses are the function's direct memory-cell accesses with the
	// lock refKeys held around each (the conflicts analyzer's input).
	accesses []staticAccess
}

// staticAccess is one direct Cell/Ref method call: the cell's refKey,
// whether it mutates, and the locks held at the call.
type staticAccess struct {
	ref   string
	write bool
	held  []string
	pos   token.Pos
}

// --- collection ---------------------------------------------------------

func (st *state) collectUnit(u *load.Unit) {
	c := &collector{st: st, u: u}
	for _, f := range u.Files {
		c.bindFile(f)
	}
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sym := declSymbol(u, fd)
			fi := &funcInfo{sym: sym, callees: map[string]bool{}}
			st.funcs[sym] = fi
			w := &walker{c: c, fi: fi}
			w.stmt(fd.Body)
		}
	}
}

type collector struct {
	st *state
	u  *load.Unit
}

// declSymbol mirrors astq.Symbol for a declaration site.
func declSymbol(u *load.Unit, fd *ast.FuncDecl) string {
	if obj, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
		return astq.Symbol(obj)
	}
	return u.Path + "." + fd.Name.Name
}

// lockCtor returns the constant name argument of a locks/cbreak mutex
// constructor call, or ok=false.
func (c *collector) lockCtor(e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := astq.Callee(c.u.Info, call)
	if fn == nil {
		return "", false
	}
	switch astq.FuncPkgPath(fn) {
	case locksPath, astq.ModulePath:
	default:
		return "", false
	}
	switch fn.Name() {
	case "NewMutex", "NewClassMutex", "NewRWMutex", "NewClassRWMutex":
	default:
		return "", false
	}
	if len(call.Args) == 0 {
		return "", false
	}
	return astq.ConstString(c.u.Info, call.Args[0])
}

// cellCtor returns the constant name argument of a memory cell/ref
// constructor call (NewCell/NewRef, name is the SECOND argument), or
// ok=false.
func (c *collector) cellCtor(e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := astq.Callee(c.u.Info, call)
	if fn == nil || astq.FuncPkgPath(fn) != memoryPath {
		return "", false
	}
	switch fn.Name() {
	case "NewCell", "NewRef":
	default:
		return "", false
	}
	if len(call.Args) < 2 {
		return "", false
	}
	return astq.ConstString(c.u.Info, call.Args[1])
}

// bindFile records refKey -> lock-name bindings from composite
// literals, assignments, and var declarations.
func (c *collector) bindFile(f *ast.File) {
	info := c.u.Info
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			named := astq.NamedType(info.TypeOf(n))
			if named == nil || named.Obj().Pkg() == nil {
				return true
			}
			tkey := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if name, ok := c.lockCtor(kv.Value); ok {
					c.st.bindings["field:"+tkey+"."+key.Name] = name
				}
				if name, ok := c.cellCtor(kv.Value); ok {
					c.st.cellBindings["field:"+tkey+"."+key.Name] = name
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				ref := c.refKey(n.Lhs[i])
				if ref == "" {
					continue
				}
				if name, ok := c.lockCtor(rhs); ok {
					c.st.bindings[ref] = name
				}
				if name, ok := c.cellCtor(rhs); ok {
					c.st.cellBindings[ref] = name
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if i >= len(n.Names) {
					break
				}
				ref := c.refKey(n.Names[i])
				if ref == "" {
					continue
				}
				if name, ok := c.lockCtor(v); ok {
					c.st.bindings[ref] = name
				}
				if name, ok := c.cellCtor(v); ok {
					c.st.cellBindings[ref] = name
				}
			}
		}
		return true
	})
}

// refKey computes the static identity of a lock expression: the struct
// field it names, the package variable, or the local variable. "" when
// the expression has no stable identity (map element, call result).
func (c *collector) refKey(e ast.Expr) string {
	info := c.u.Info
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "pkgvar:" + v.Pkg().Path() + "." + v.Name()
		}
		return fmt.Sprintf("local:%d.%s", v.Pos(), v.Name())
	case *ast.SelectorExpr:
		sel, ok := info.Selections[x]
		if ok && sel.Kind() == types.FieldVal {
			named := astq.NamedType(sel.Recv())
			if named != nil && named.Obj().Pkg() != nil {
				return "field:" + named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Obj().Name()
			}
			return ""
		}
		// Package-qualified var: pkg.Mu
		if obj, ok := info.Uses[x.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return "pkgvar:" + obj.Pkg().Path() + "." + obj.Name()
		}
		return ""
	case *ast.StarExpr:
		return c.refKey(x.X)
	}
	return ""
}

// --- intra-function walk ------------------------------------------------

type walker struct {
	c    *collector
	fi   *funcInfo
	held []string
}

func (w *walker) snapshot() []string { return append([]string(nil), w.held...) }
func (w *walker) restore(s []string) { w.held = s }

func (w *walker) acquire(ref string, pos token.Pos) {
	for _, h := range w.held {
		if h != ref {
			w.fi.edges = append(w.fi.edges, Edge{From: h, To: ref, Pos: pos})
		}
	}
	w.fi.directAcq = append(w.fi.directAcq, ref)
	w.held = append(w.held, ref)
}

func (w *walker) release(ref string) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i] == ref {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

func (w *walker) stmt(n ast.Stmt) {
	if n == nil {
		return
	}
	switch s := n.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.stmt(st)
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		snap := w.snapshot()
		w.stmt(s.Body)
		w.restore(snap)
		w.stmt(s.Else)
		w.restore(snap)
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		snap := w.snapshot()
		w.stmt(s.Body)
		w.stmt(s.Post)
		w.restore(snap)
	case *ast.RangeStmt:
		w.expr(s.X)
		snap := w.snapshot()
		w.stmt(s.Body)
		w.restore(snap)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		w.clauses(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.clauses(s.Body)
	case *ast.SelectStmt:
		w.clauses(s.Body)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.GoStmt:
		// The goroutine does not inherit the caller's held set (it runs
		// concurrently), so its body is analyzed as a separate root.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.c.anonRoot(lit)
		}
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.DeferStmt:
		// Deferred unlocks release at function exit, which cannot add
		// order edges; deferred closures likewise run after the body.
		// Nothing to track.
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
}

func (w *walker) clauses(body *ast.BlockStmt) {
	snap := w.snapshot()
	for _, cl := range body.List {
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e)
			}
			for _, st := range c.Body {
				w.stmt(st)
			}
		case *ast.CommClause:
			w.stmt(c.Comm)
			for _, st := range c.Body {
				w.stmt(st)
			}
		}
		w.restore(snap)
	}
}

// expr walks an expression, handling lock-method calls and recording
// ordinary calls for the interprocedural summary.
func (w *walker) expr(n ast.Expr) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.CallExpr:
			// call() returns true when it fully handled the subtree
			// (lock method or With-closure).
			return !w.call(c)
		case *ast.FuncLit:
			// A literal that is not a With-closure (those are consumed
			// by call) and not a go body: analyzed as its own root,
			// without the caller's held set.
			w.c.anonRoot(c)
			return false
		}
		return true
	})
}

// call processes one call expression; it returns true when it consumed
// the node (children already walked as needed).
func (w *walker) call(call *ast.CallExpr) bool {
	info := w.c.u.Info
	fn := astq.Callee(info, call)
	if fn == nil {
		return false
	}
	if astq.FuncPkgPath(fn) == locksPath {
		recv := astq.RecvTypeName(fn)
		if recv == "Mutex" || recv == "RWMutex" {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return false
			}
			ref := w.c.refKey(sel.X)
			if ref == "" {
				// Unidentifiable lock: walk args normally.
				return false
			}
			switch fn.Name() {
			case "Lock", "LockAt", "TryLock", "RLock", "RLockAt":
				w.acquire(ref, call.Pos())
				return true
			case "Unlock", "UnlockAt", "RUnlock", "RUnlockAt":
				w.release(ref)
				return true
			case "With", "WithAt", "WithRead", "WithWrite":
				w.acquire(ref, call.Pos())
				if len(call.Args) > 0 {
					if lit, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit); ok {
						w.stmt(lit.Body)
					}
				}
				w.release(ref)
				return true
			}
		}
		return false
	}
	if astq.FuncPkgPath(fn) == memoryPath {
		w.cellCall(fn, call)
		return false
	}
	// Ordinary resolvable call: summary material for both the
	// acquisition fixpoint (lock edges through callees) and the
	// access expansion (cell accesses through callees, which also
	// matter when NO lock is held — the conflicts analyzer's case).
	sym := astq.Symbol(fn)
	w.fi.callees[sym] = true
	w.fi.pending = append(w.fi.pending, pendingCall{
		held:   w.snapshot(),
		callee: sym,
		name:   displayName(fn),
		pos:    call.Pos(),
	})
	return false
}

// cellCall records a Cell/Ref method call as a static memory access
// with the current held set.
func (w *walker) cellCall(fn *types.Func, call *ast.CallExpr) {
	var write bool
	switch astq.RecvTypeName(fn) {
	case "Cell":
		switch fn.Name() {
		case "Load":
		case "Store", "Add", "AtomicAdd", "CompareAndSwap":
			write = true
		default:
			return
		}
	case "Ref":
		switch fn.Name() {
		case "Load":
		case "Store":
			write = true
		default:
			return
		}
	default:
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	ref := w.c.refKey(sel.X)
	if ref == "" {
		return
	}
	w.fi.accesses = append(w.fi.accesses, staticAccess{
		ref:   ref,
		write: write,
		held:  w.snapshot(),
		pos:   call.Pos(),
	})
}

func displayName(fn *types.Func) string {
	if r := astq.RecvTypeName(fn); r != "" {
		return "(*" + r + ")." + fn.Name()
	}
	return fn.Name()
}

// anonRoot analyzes a function literal as an independent root (empty
// held set): goroutine bodies and stored closures.
func (c *collector) anonRoot(lit *ast.FuncLit) {
	c.st.anon++
	sym := fmt.Sprintf("%s.anon%d", c.u.Path, c.st.anon)
	fi := &funcInfo{sym: sym, callees: map[string]bool{}}
	c.st.funcs[sym] = fi
	w := &walker{c: c, fi: fi}
	w.stmt(lit.Body)
}

// --- whole-program graph ------------------------------------------------

// className resolves a refKey to its display name: the constant NewMutex
// name when bound, a trimmed identity path otherwise.
func (st *state) className(ref string) string {
	if n, ok := st.bindings[ref]; ok {
		return n
	}
	for _, p := range []string{"field:", "pkgvar:", "local:"} {
		if rest, ok := strings.CutPrefix(ref, p); ok {
			return rest
		}
	}
	return ref
}

// edges assembles the whole-program edge set: direct edges plus pending
// call edges expanded through the acquisition summary fixpoint.
func (st *state) allEdges() []Edge {
	// Summary fixpoint: acquires(f) = direct ∪ acquires(callees).
	acquires := map[string]map[string]bool{}
	for sym, fi := range st.funcs {
		set := map[string]bool{}
		for _, r := range fi.directAcq {
			set[r] = true
		}
		acquires[sym] = set
	}
	for changed := true; changed; {
		changed = false
		for sym, fi := range st.funcs {
			set := acquires[sym]
			for callee := range fi.callees {
				for r := range acquires[callee] {
					if !set[r] {
						set[r] = true
						changed = true
					}
				}
			}
		}
	}
	var out []Edge
	for _, fi := range st.funcs {
		for _, e := range fi.edges {
			out = append(out, Edge{From: st.className(e.From), To: st.className(e.To), Pos: e.Pos})
		}
		for _, p := range fi.pending {
			for to := range acquires[p.callee] {
				for _, from := range p.held {
					if from == to {
						continue
					}
					out = append(out, Edge{
						From: st.className(from), To: st.className(to),
						Pos: p.pos, Via: p.name,
					})
				}
			}
		}
	}
	return out
}

// cycles finds simple cycles in the class graph, deduplicated by
// participant set, deterministic for a given state.
func (st *state) cycles() []Cycle {
	edges := st.allEdges()
	// One representative edge per (from, to), earliest position wins.
	best := map[[2]string]Edge{}
	adj := map[string][]string{}
	for _, e := range edges {
		k := [2]string{e.From, e.To}
		if old, ok := best[k]; !ok || e.Pos < old.Pos {
			if !ok {
				adj[e.From] = append(adj[e.From], e.To)
			}
			best[k] = e
		}
	}
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
		sort.Strings(adj[n])
	}
	sort.Strings(nodes)

	seen := map[string]bool{}
	var out []Cycle
	const maxLen = 6
	for _, start := range nodes {
		var path []string
		onPath := map[string]int{}
		var dfs func(n string)
		dfs = func(n string) {
			if at, ok := onPath[n]; ok {
				if n == start && at == 0 {
					cyc := append([]string(nil), path...)
					key := canonical(cyc)
					if !seen[key] {
						seen[key] = true
						out = append(out, st.buildCycle(cyc, best))
					}
				}
				return
			}
			if len(path) >= maxLen {
				return
			}
			// Only explore nodes >= start to canonicalize enumeration.
			if n < start {
				return
			}
			onPath[n] = len(path)
			path = append(path, n)
			for _, m := range adj[n] {
				dfs(m)
			}
			path = path[:len(path)-1]
			delete(onPath, n)
		}
		dfs(start)
	}
	return out
}

func canonical(cycle []string) string {
	s := append([]string(nil), cycle...)
	sort.Strings(s)
	return strings.Join(s, "\x00")
}

func (st *state) buildCycle(classes []string, best map[[2]string]Edge) Cycle {
	c := Cycle{Classes: classes}
	for i, from := range classes {
		to := classes[(i+1)%len(classes)]
		c.Edges = append(c.Edges, best[[2]string{from, to}])
	}
	return c
}

// Cycles runs the collection and graph build over already-loaded units
// and returns every lock-order cycle, ignoring suppressions. The
// lockorder↔waitgraph bridge test uses it to compare static findings
// with runtime deadlock signatures.
func Cycles(units []*load.Unit) []Cycle {
	st := newState()
	for _, u := range units {
		st.collectUnit(u)
	}
	return st.cycles()
}

func finish(f *analysis.Finish) error {
	st := f.State.(*state)
	for _, cyc := range st.cycles() {
		ring := strings.Join(append(append([]string{}, cyc.Classes...), cyc.Classes[0]), " -> ")
		for i, e := range cyc.Edges {
			var others []string
			for j, o := range cyc.Edges {
				if j != i {
					p := f.Fset.Position(o.Pos)
					others = append(others, fmt.Sprintf("%s:%d", p.Filename, p.Line))
				}
			}
			via := ""
			if e.Via != "" {
				via = " via " + e.Via
			}
			f.Reportf(e.Pos,
				"potential deadlock: lock-order cycle %s; this site acquires %s while holding %s%s; opposing acquisition at %s",
				ring, e.To, e.From, via, strings.Join(others, ", "))
		}
	}
	return nil
}
