// Package conflicts flags shared memory cells accessed under
// inconsistent locksets: some site holds a lock around the cell, some
// other site reaches it with no common lock, and at least one access
// writes. These are exactly the pairs the dynamic predictor
// (internal/predict) manufactures breakpoints for, found statically —
// the Eraser discipline applied at vet time over the same
// interprocedural walk the lockorder analyzer uses. A bridge test pins
// the two ends together: the static candidate on the mysql LSN cell
// names the same cell the recorded-trace predictor reports.
//
// The analysis is context-insensitive in the usual summary way: a
// helper that accesses a cell contributes one instance per calling
// context with the caller's locks added, plus its own as-written
// instance. A helper whose every caller locks therefore still shows a
// lock-free instance; suppress such findings with
//
//	//cbvet:ignore conflicts <why the discipline holds anyway>
package conflicts

import (
	"go/token"
	"sort"
	"strings"

	"cbreak/internal/analysis"
	"cbreak/internal/analysis/load"
	"cbreak/internal/analysis/lockorder"
)

// Analyzer reports cells with inconsistent locksets.
var Analyzer = &analysis.Analyzer{
	Name: "conflicts",
	Doc: "shared cells accessed under inconsistent locksets: a write reaches the cell " +
		"without the lock other sites hold, so a schedule exists in which the accesses race; " +
		"candidates line up with internal/predict's dynamically predicted pairs",
	Run: func(pass *analysis.Pass) error {
		pass.State.(*lockorder.Summary).Collect(pass.Unit)
		return nil
	},
	NewState: func() any { return lockorder.NewSummary() },
	Finish:   finish,
}

// Candidate is one flagged cell: the access instances, the locks seen
// across them (no lock is common to all), and the anchor position the
// diagnostic reports at.
type Candidate struct {
	// Cell is the cell's class name ("mysql.lsn").
	Cell string
	// Pos anchors the finding: the first lock-free write when one
	// exists, then the first lock-free access, then the first write.
	Pos token.Pos
	// AnchorLocks are the locks held at the anchor access (often none).
	AnchorLocks []string
	// OtherLocks is the union of locks held at the remaining accesses.
	OtherLocks []string
	// Accesses are all of the cell's instances, position-ordered.
	Accesses []lockorder.CellAccess
}

// Candidates runs the collection over already-loaded units and returns
// every flagged cell, ignoring suppressions; the predict bridge test
// compares this list with dynamic predictions.
func Candidates(units []*load.Unit) []Candidate {
	s := lockorder.NewSummary()
	for _, u := range units {
		s.Collect(u)
	}
	return candidates(s.CellAccesses())
}

// candidates groups access instances by cell and applies the lockset
// condition: intersection of held locks empty, at least one access
// locked, at least one write.
func candidates(accs []lockorder.CellAccess) []Candidate {
	byCell := map[string][]lockorder.CellAccess{}
	var cells []string
	for _, a := range accs {
		if _, ok := byCell[a.Cell]; !ok {
			cells = append(cells, a.Cell)
		}
		byCell[a.Cell] = append(byCell[a.Cell], a)
	}
	sort.Strings(cells)

	var out []Candidate
	for _, cell := range cells {
		group := byCell[cell]
		var (
			inter     map[string]bool
			anyLocked bool
			anyWrite  bool
		)
		for i, a := range group {
			if len(a.Locks) > 0 {
				anyLocked = true
			}
			if a.Write {
				anyWrite = true
			}
			set := map[string]bool{}
			for _, l := range a.Locks {
				set[l] = true
			}
			if i == 0 {
				inter = set
				continue
			}
			for l := range inter {
				if !set[l] {
					delete(inter, l)
				}
			}
		}
		if len(inter) > 0 || !anyLocked || !anyWrite {
			continue
		}
		anchor := pickAnchor(group)
		other := map[string]bool{}
		for _, a := range group {
			if a.Pos == anchor.Pos && a.Write == anchor.Write {
				continue
			}
			for _, l := range a.Locks {
				other[l] = true
			}
		}
		out = append(out, Candidate{
			Cell:        cell,
			Pos:         anchor.Pos,
			AnchorLocks: anchor.Locks,
			OtherLocks:  sortedKeys(other),
			Accesses:    group,
		})
	}
	return out
}

// pickAnchor selects the instance the diagnostic points at: the first
// lock-free write, else the first lock-free access, else the first
// write, else the first access.
func pickAnchor(group []lockorder.CellAccess) lockorder.CellAccess {
	best := -1
	rank := func(a lockorder.CellAccess) int {
		switch {
		case len(a.Locks) == 0 && a.Write:
			return 0
		case len(a.Locks) == 0:
			return 1
		case a.Write:
			return 2
		}
		return 3
	}
	for i := range group {
		if best < 0 || rank(group[i]) < rank(group[best]) ||
			(rank(group[i]) == rank(group[best]) && group[i].Pos < group[best].Pos) {
			best = i
		}
	}
	return group[best]
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func finish(f *analysis.Finish) error {
	for _, c := range candidates(f.State.(*lockorder.Summary).CellAccesses()) {
		here := "no lock"
		if len(c.AnchorLocks) > 0 {
			here = "only " + strings.Join(c.AnchorLocks, ", ")
		}
		f.Reportf(c.Pos,
			"inconsistent locking of cell %s: this access holds %s while other sites hold %s; "+
				"no common lock protects the cell, so a schedule exists in which the accesses race "+
				"(verify with cbpredict)",
			c.Cell, here, strings.Join(c.OtherLocks, ", "))
	}
	return nil
}
