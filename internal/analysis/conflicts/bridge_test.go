package conflicts_test

import (
	"path/filepath"
	"testing"

	"cbreak/internal/analysis/conflicts"
	"cbreak/internal/analysis/load"
	"cbreak/internal/predict"
)

// The static conflict pass and the dynamic trace predictor must agree
// on the mysql LSN cell: the candidate conflicts flags from source
// alone (locked commit-path write vs lock-free insert-path write) is
// the same cell, with the same lock story, that internal/predict
// reports from a recorded trace — and that cbpredict then manufactures
// a breakpoint for.
func TestStaticCandidateMatchesDynamicPrediction(t *testing.T) {
	// Static side: analyze the mysql package and pick out the LSN
	// candidate.
	loader, err := load.New(".")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dir := filepath.Join(loader.ModuleRoot(), "internal", "apps", "mysql")
	units, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading mysql package: %v", err)
	}
	cands := conflicts.Candidates(units)
	var static *conflicts.Candidate
	for i := range cands {
		if cands[i].Cell == "mysql.lsn" {
			static = &cands[i]
		}
	}
	if static == nil {
		t.Fatal("conflicts found no candidate for mysql.lsn")
	}
	var staticLocked bool
	for _, a := range static.Accesses {
		for _, l := range a.Locks {
			if l == "mysql.catalog" {
				staticLocked = true
			}
		}
	}
	if !staticLocked {
		t.Fatalf("static candidate never sees mysql.catalog held: %+v", static.Accesses)
	}

	// Dynamic side: record the racy workload and predict.
	traceDir := t.TempDir()
	if _, err := predict.RecordRacyMySQL(traceDir); err != nil {
		t.Fatalf("RecordRacyMySQL: %v", err)
	}
	tr, err := predict.Load(traceDir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var dynamic *predict.Prediction
	for _, p := range predict.Predict(tr).PredictedOnly() {
		if p.Var == static.Cell {
			q := p
			dynamic = &q
		}
	}
	if dynamic == nil {
		t.Fatalf("no dynamic prediction for static candidate %s", static.Cell)
	}

	// Same cell, same lock story: the side the predictor saw locked
	// holds mysql.catalog, matching the static locked access; the other
	// side is lock-free, matching the static anchor.
	locks := append(append([]string(nil), dynamic.Locks1...), dynamic.Locks2...)
	var dynLocked bool
	for _, l := range locks {
		if l == "mysql.catalog" {
			dynLocked = true
		}
	}
	if !dynLocked {
		t.Fatalf("dynamic prediction never sees mysql.catalog held: %+v", dynamic)
	}
	if len(dynamic.Locks1) > 0 && len(dynamic.Locks2) > 0 {
		t.Fatalf("dynamic prediction has no lock-free side: %+v", dynamic)
	}
	if len(static.AnchorLocks) != 0 {
		t.Fatalf("static anchor is not the lock-free side: %+v", static)
	}
}
