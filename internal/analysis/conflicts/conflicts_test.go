package conflicts_test

import (
	"strings"
	"testing"

	"cbreak/internal/analysis"
	"cbreak/internal/analysis/cbvettest"
	"cbreak/internal/analysis/conflicts"
	"cbreak/internal/analysis/load"
)

func TestFixtures(t *testing.T) {
	res := cbvettest.Run(t, conflicts.Analyzer, "testdata/a")
	if n := len(res.Suppressed); n != 1 {
		t.Errorf("suppressed findings = %d, want 1 (the annotated hush counter)", n)
	}
	if n := len(res.BadDirectives); n != 0 {
		t.Errorf("bad directives = %d, want 0: %v", n, res.BadDirectives)
	}
}

// TestMalformedSuppression pins the directive grammar: an ignore with
// no reason is reported as malformed and silences nothing.
func TestMalformedSuppression(t *testing.T) {
	loader, err := load.New("testdata/malformed")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	units, err := loader.LoadDir("testdata/malformed")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	runner := &analysis.Runner{Analyzers: []*analysis.Analyzer{conflicts.Analyzer}}
	res, err := runner.Run(units)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n := len(res.BadDirectives); n != 1 {
		t.Fatalf("bad directives = %d, want 1: %+v", n, res.BadDirectives)
	}
	if msg := res.BadDirectives[0].Message; !strings.Contains(msg, "malformed //cbvet:ignore") {
		t.Errorf("bad directive message = %q, want the malformed-grammar message", msg)
	}
	if n := len(res.Suppressed); n != 0 {
		t.Errorf("suppressed = %d, want 0 (a malformed directive must not silence findings)", n)
	}
	// The real finding survives alongside the malformed-directive one.
	var conflictFindings int
	for _, f := range res.Findings {
		if f.Analyzer == "conflicts" && strings.Contains(f.Message, "mal.val") {
			conflictFindings++
		}
	}
	if conflictFindings != 1 {
		t.Errorf("conflicts findings on mal.val = %d, want 1:\n%+v", conflictFindings, res.Findings)
	}
}

// TestCandidates exercises the exported candidate API the bridge test
// builds on.
func TestCandidates(t *testing.T) {
	loader, err := load.New("testdata/a")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	units, err := loader.LoadDir("testdata/a")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	cands := conflicts.Candidates(units)
	got := map[string]bool{}
	for _, c := range cands {
		got[c.Cell] = true
	}
	for _, want := range []string{"fix.counter", "fix.depth", "fix.split", "fix.hush"} {
		if !got[want] {
			t.Errorf("candidate for %s missing (got %v)", want, got)
		}
	}
	for _, dontWant := range []string{"fix.steady", "fix.free"} {
		if got[dontWant] {
			t.Errorf("unexpected candidate for %s", dontWant)
		}
	}
}
