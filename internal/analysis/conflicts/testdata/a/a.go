// Fixture for the conflicts analyzer.
package a

import (
	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

var (
	mu    = locks.NewMutex("fix.mu")
	other = locks.NewMutex("fix.other")

	counter = memory.NewCell(nil, "fix.counter", 0)
	depth   = memory.NewCell(nil, "fix.depth", 0)
	split   = memory.NewCell(nil, "fix.split", 0)
	steady  = memory.NewCell(nil, "fix.steady", 0)
	free    = memory.NewCell(nil, "fix.free", 0)
	hush    = memory.NewCell(nil, "fix.hush", 0)
)

// Inconsistent: one writer under the lock, one lock-free.
func lockedBump() {
	mu.Lock()
	defer mu.Unlock()
	counter.Add("fix:counter.locked", 1)
}

func rawBump() {
	counter.Add("fix:counter.raw", 1) // want "inconsistent locking of cell fix.counter"
}

// The same inconsistency through an interprocedural edge: the helper's
// write is locked by one caller and reached lock-free by the other.
func through() {
	depth.Add("fix:depth", 1) // want "inconsistent locking of cell fix.depth"
}

func lockedCaller() {
	mu.Lock()
	defer mu.Unlock()
	through()
}

func rawCaller() {
	through()
}

// Disjoint locksets: both writers lock, but not the same lock, so no
// common lock protects the cell.
func splitMu() {
	mu.Lock()
	defer mu.Unlock()
	split.Store("fix:split.mu", 1) // want "inconsistent locking of cell fix.split"
}

func splitOther() {
	other.Lock()
	defer other.Unlock()
	split.Store("fix:split.other", 2)
}

// Negative: every access holds the same lock.
func steadyBump() {
	mu.Lock()
	defer mu.Unlock()
	steady.Add("fix:steady.bump", 1)
}

func steadyRead() int64 {
	mu.Lock()
	defer mu.Unlock()
	return steady.Load("fix:steady.read")
}

// Negative: no access ever locks — nothing claims a discipline, so
// there is no inconsistency to report (the dynamic detectors own this
// case).
func freeBump() {
	free.Add("fix:free.bump", 1)
}

func freeRead() int64 {
	return free.Load("fix:free.read")
}

// Suppressed: the inconsistency is real but declared intentional.
func hushRaw() {
	//cbvet:ignore conflicts intentionally racy demo counter for the suppression fixture
	hush.Add("fix:hush.raw", 1)
}

func hushLocked() {
	mu.Lock()
	defer mu.Unlock()
	hush.Add("fix:hush.locked", 1)
}
