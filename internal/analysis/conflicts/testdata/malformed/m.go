// Fixture for malformed //cbvet:ignore directives: a conflicts
// suppression with no reason must surface as a bad directive, and must
// NOT silence the finding it precedes.
package m

import (
	"cbreak/internal/locks"
	"cbreak/internal/memory"
)

var (
	mu  = locks.NewMutex("mal.mu")
	val = memory.NewCell(nil, "mal.val", 0)
)

func lockedWrite() {
	mu.Lock()
	defer mu.Unlock()
	val.Store("mal:locked", 1)
}

func rawWrite() {
	//cbvet:ignore conflicts
	val.Store("mal:raw", 2)
}
