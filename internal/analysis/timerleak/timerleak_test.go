package timerleak_test

import (
	"testing"

	"cbreak/internal/analysis/cbvettest"
	"cbreak/internal/analysis/timerleak"
)

func TestFixtures(t *testing.T) {
	res := cbvettest.Run(t, timerleak.Analyzer, "testdata/a")
	if n := len(res.Suppressed); n != 1 {
		t.Errorf("suppressed findings = %d, want 1 (the //cbvet:ignore site)", n)
	}
}
