// Package timerleak flags time.After calls inside loops. Each call
// allocates a timer that is not collected until it fires, so a
// select-in-a-loop that takes the other branch leaks one timer per
// iteration — the leak class PR 3 removed from the engine's awaitFirst
// and chain stages by hand, enforced mechanically from now on. The fix
// is a single time.NewTimer (or Ticker) hoisted out of the loop, with
// Stop/Reset per iteration.
package timerleak

import (
	"go/ast"
	"strings"

	"cbreak/internal/analysis"
	"cbreak/internal/analysis/astq"
)

// Analyzer flags time.After inside for/range loops (including the
// bodies of function literals defined there, which run per iteration in
// every idiom this codebase uses). Test files are exempt: their loops
// are bounded and torn down with the process, and per-iteration timeout
// semantics (what time.After gives) are usually what a test wants.
var Analyzer = &analysis.Analyzer{
	Name: "timerleak",
	Doc: "time.After inside a loop leaks one timer per iteration until it fires; " +
		"hoist a time.NewTimer out of the loop and Stop/Reset it instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	info := pass.Unit.Info
	for _, f := range pass.Unit.Files {
		if strings.HasSuffix(pass.Unit.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		var walk func(n ast.Node, loopDepth int)
		walk = func(n ast.Node, loopDepth int) {
			if n == nil {
				return
			}
			switch n := n.(type) {
			case *ast.ForStmt:
				walk(n.Init, loopDepth)
				walk(n.Cond, loopDepth)
				walk(n.Post, loopDepth)
				walk(n.Body, loopDepth+1)
				return
			case *ast.RangeStmt:
				walk(n.Key, loopDepth)
				walk(n.Value, loopDepth)
				walk(n.X, loopDepth)
				walk(n.Body, loopDepth+1)
				return
			case *ast.CallExpr:
				if loopDepth > 0 {
					// Package-level time.After only: (time.Time).After is
					// a pure comparison with the same name.
					if fn := astq.Callee(info, n); fn != nil &&
						astq.FuncPkgPath(fn) == "time" && fn.Name() == "After" &&
						astq.RecvTypeName(fn) == "" {
						pass.Reportf(n.Pos(),
							"time.After in a loop leaks a timer per iteration; hoist a time.NewTimer outside the loop and Stop/Reset it")
					}
				}
			}
			// Generic traversal for everything else (function literals
			// included: a literal defined inside a loop executes per
			// iteration in the idioms this repo uses).
			ast.Inspect(n, func(c ast.Node) bool {
				if c == n {
					return true
				}
				switch c.(type) {
				case *ast.ForStmt, *ast.RangeStmt, *ast.CallExpr:
					walk(c, loopDepth)
					return false
				}
				return true
			})
		}
		walk(f, 0)
	}
	return nil
}
