// Fixture for the timerleak analyzer.
package a

import "time"

func loops(ch chan int, deadline time.Time) {
	for {
		select {
		case <-ch:
		case <-time.After(time.Second): // want "time.After in a loop"
			return
		}
	}
}

func rangeLoop(items []int, ch chan int) {
	for range items {
		<-time.After(time.Millisecond) // want "time.After in a loop"
	}
}

func funcLitInLoop(run func(func())) {
	for i := 0; i < 3; i++ {
		run(func() {
			<-time.After(time.Millisecond) // want "time.After in a loop"
		})
	}
}

func suppressed(ch chan int) {
	for {
		select {
		case <-ch:
		//cbvet:ignore timerleak bounded two-iteration poll, the leak is negligible
		case <-time.After(time.Second):
			return
		}
	}
}

// Negative cases: time.After outside a loop, and the (time.Time).After
// method, which shares the name but is a pure comparison.
func fine(ch chan int, deadline time.Time) bool {
	select {
	case <-ch:
	case <-time.After(time.Second):
	}
	for time.Now().After(deadline) {
		return true
	}
	return false
}
