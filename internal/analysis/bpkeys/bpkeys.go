// Package bpkeys checks breakpoint-key hygiene. A concurrent breakpoint
// only fires when two goroutines arrive with the same key, so a typo'd
// key is not an error anyone sees — it is a breakpoint that silently
// never rendezvous, which turns a near-certain reproduction back into a
// Heisenbug. The whole-program pass groups every constant trigger key by
// value and flags keys that cannot pair: a single site with a fixed
// first/second role and no cbreak.Register anywhere, every site passing
// the same first= literal, or an n-way key whose only static site fills
// one slot. The per-package pass additionally flags string-keyed
// TriggerHere* calls inside loops, where the per-call registry lookup
// belongs outside the loop as a cached core.Breakpoint handle.
package bpkeys

import (
	"go/ast"
	"go/constant"
	"go/token"
	"sort"
	"strings"

	"cbreak/internal/analysis"
	"cbreak/internal/analysis/astq"
)

// Analyzer is the breakpoint-key hygiene check.
var Analyzer = &analysis.Analyzer{
	Name: "bpkeys",
	Doc: "breakpoint keys that can never rendezvous (single-sided, same-role, or " +
		"orphaned n-way keys) and string-keyed trigger calls in loops that should " +
		"use a cached core.Breakpoint handle",
	Run:      run,
	NewState: func() any { return &state{sites: map[string][]site{}} },
	Finish:   finish,
}

const corePath = astq.ModulePath + "/internal/core"

type role int

const (
	roleFirst role = iota
	roleSecond
	roleMulti    // n-way site with a constant slot
	roleRegister // cbreak.Register / Engine.Breakpoint handle
	roleUnknown  // non-constant first/slot, or trigger built outside a call
)

type site struct {
	pos    token.Pos
	file   string
	role   role
	slot   int // roleMulti only
	arity  int // roleMulti only
	inTest bool
}

type state struct {
	sites map[string][]site
}

// triggerKind classifies a callee as a trigger-call wrapper: two-sided
// (first bool at arg 1), n-way (slot, arity at args 1, 2), or neither.
func triggerKind(name string) (twoSided, multi bool) {
	switch name {
	case "TriggerHere", "TriggerHereOpts", "TriggerHereAnd", "Trigger", "TriggerAnd", "TriggerOutcome":
		return true, false
	case "TriggerHereMulti", "TriggerHereMultiAnd", "TriggerMulti", "TriggerMultiAnd":
		return false, true
	}
	return false, false
}

func isTriggerPkg(path string) bool {
	return path == astq.ModulePath || path == corePath
}

// ctorKey returns the constant key of a breakpoint-trigger constructor
// call (NewConflictTrigger et al.), or ok=false.
func ctorKey(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := astq.Callee(pass.Unit.Info, call)
	if fn == nil || !isTriggerPkg(astq.FuncPkgPath(fn)) {
		return "", false
	}
	switch fn.Name() {
	case "NewConflictTrigger", "NewDeadlockTrigger", "NewAtomicityTrigger",
		"NewNotifyTrigger", "NewPredTrigger":
	default:
		return "", false
	}
	if len(call.Args) == 0 {
		return "", false
	}
	return astq.ConstString(pass.Unit.Info, call.Args[0])
}

func run(pass *analysis.Pass) error {
	st := pass.State.(*state)
	fset := pass.Unit.Fset
	consumed := map[*ast.CallExpr]bool{}

	addSite := func(key string, s site) {
		p := fset.Position(s.pos)
		s.file = p.Filename
		s.inTest = strings.HasSuffix(p.Filename, "_test.go")
		st.sites[key] = append(st.sites[key], s)
	}

	// First sweep: trigger-wrapper calls. These consume a directly
	// nested constructor (assigning it a first/second/multi role) and,
	// when string-keyed and inside a loop, draw the handle diagnostic.
	for _, f := range pass.Unit.Files {
		var walk func(n ast.Node, loopDepth int)
		walk = func(n ast.Node, loopDepth int) {
			if n == nil {
				return
			}
			ast.Inspect(n, func(c ast.Node) bool {
				switch c := c.(type) {
				case *ast.ForStmt:
					if c == n {
						return true
					}
					walk(c.Init, loopDepth)
					walk(c.Cond, loopDepth)
					walk(c.Post, loopDepth)
					walk(c.Body, loopDepth+1)
					return false
				case *ast.RangeStmt:
					if c == n {
						return true
					}
					walk(c.X, loopDepth)
					walk(c.Body, loopDepth+1)
					return false
				case *ast.CallExpr:
					visitCall(pass, st, c, loopDepth, consumed, addSite)
					return true
				}
				return true
			})
		}
		walk(f, 0)
	}

	// Second sweep: constructors that did not feed a trigger call
	// directly (stored in a variable, returned, ...). Their role is
	// unknown, which exempts the key from rendezvous reporting.
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || consumed[call] {
			return true
		}
		if key, ok := ctorKey(pass, call); ok {
			addSite(key, site{pos: call.Pos(), role: roleUnknown})
		}
		return true
	})
	return nil
}

func visitCall(pass *analysis.Pass, st *state, call *ast.CallExpr, loopDepth int,
	consumed map[*ast.CallExpr]bool, addSite func(string, site)) {
	info := pass.Unit.Info
	fn := astq.Callee(info, call)
	if fn == nil {
		return
	}
	pkg := astq.FuncPkgPath(fn)
	if !isTriggerPkg(pkg) {
		return
	}

	// Handle registration: cbreak.Register(key) / Engine.Breakpoint(key).
	if (fn.Name() == "Register" && astq.RecvTypeName(fn) == "") ||
		(fn.Name() == "Breakpoint" && astq.RecvTypeName(fn) == "Engine") {
		if len(call.Args) == 1 {
			if key, ok := astq.ConstString(info, call.Args[0]); ok {
				addSite(key, site{pos: call.Pos(), role: roleRegister})
			}
		}
		return
	}

	twoSided, multi := triggerKind(fn.Name())
	if !twoSided && !multi {
		return
	}

	// String-keyed lookup per call: every TriggerHere* (package-level or
	// Engine method) resolves the key through the registry on each
	// arrival. Inside a loop that lookup belongs outside, cached in a
	// handle. Handle methods (Breakpoint.Trigger*) are exempt, as are
	// test files — the benchmarks and stress tests deliberately hammer
	// the string-keyed path, which is the thing being measured.
	if loopDepth > 0 && strings.HasPrefix(fn.Name(), "TriggerHere") &&
		!strings.HasSuffix(pass.Unit.Fset.Position(call.Pos()).Filename, "_test.go") {
		pass.Reportf(call.Pos(),
			"string-keyed %s inside a loop does a registry lookup per iteration; resolve a core.Breakpoint handle once outside the loop (cbreak.Register)", fn.Name())
	}

	if len(call.Args) == 0 {
		return
	}
	ctor, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	key, ok := ctorKey(pass, ctor)
	if !ok {
		return
	}
	consumed[ctor] = true
	s := site{pos: ctor.Pos(), role: roleUnknown}
	switch {
	case twoSided && len(call.Args) >= 2:
		if first, ok := astq.ConstBool(info, call.Args[1]); ok {
			if first {
				s.role = roleFirst
			} else {
				s.role = roleSecond
			}
		}
	case multi && len(call.Args) >= 3:
		if slot, ok := constInt(pass, call.Args[1]); ok {
			if arity, ok := constInt(pass, call.Args[2]); ok {
				s.role, s.slot, s.arity = roleMulti, slot, arity
			}
		}
	}
	addSite(key, s)
}

func constInt(pass *analysis.Pass, e ast.Expr) (int, bool) {
	tv, ok := pass.Unit.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	n, exact := constant.Int64Val(tv.Value)
	if !exact {
		return 0, false
	}
	return int(n), true
}

func finish(f *analysis.Finish) error {
	if f.Partial {
		// Under go vet -vettool each package is analyzed alone; a key's
		// partner or Register may live in a unit this process never
		// sees, so whole-program verdicts are unsound here.
		return nil
	}
	st := f.State.(*state)
	keys := make([]string, 0, len(st.sites))
	for k := range st.sites {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		checkKey(f, key, st.sites[key])
	}
	return nil
}

func checkKey(f *analysis.Finish, key string, sites []site) {
	var nFirst, nSecond, nMulti, nOther int
	slots := map[int]bool{}
	arity := 0
	allTest := true
	for _, s := range sites {
		switch s.role {
		case roleFirst:
			nFirst++
		case roleSecond:
			nSecond++
		case roleMulti:
			nMulti++
			slots[s.slot] = true
			if s.arity > arity {
				arity = s.arity
			}
		default:
			nOther++ // register or unknown: assume pairable
		}
		if !s.inTest {
			allTest = false
		}
	}
	if nOther > 0 || allTest {
		return
	}
	report := func(format string, args ...any) {
		for _, s := range sites {
			if !s.inTest {
				f.Reportf(s.pos, format, args...)
			}
		}
	}
	switch {
	case nMulti > 0 && (nFirst > 0 || nSecond > 0):
		return // mixed two-sided and n-way use: no static verdict
	case nMulti > 0:
		if len(slots) == 1 && arity > 1 {
			for slot := range slots {
				report("n-way breakpoint key %q can never rendezvous: every static site fills slot %d of %d; the other slots have no call sites", key, slot, arity)
			}
		}
	case nFirst > 0 && nSecond == 0:
		if nFirst == 1 {
			report("breakpoint key %q has a single trigger site (first=true) and no partner or cbreak.Register; a mistyped key never rendezvous", key)
		} else {
			report("breakpoint key %q can never rendezvous: all %d sites pass first=true; a pair needs a first=false side", key, nFirst)
		}
	case nSecond > 0 && nFirst == 0:
		if nSecond == 1 {
			report("breakpoint key %q has a single trigger site (first=false) and no partner or cbreak.Register; a mistyped key never rendezvous", key)
		} else {
			report("breakpoint key %q can never rendezvous: all %d sites pass first=false; a pair needs a first=true side", key, nSecond)
		}
	}
}
