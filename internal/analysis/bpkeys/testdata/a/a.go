// Fixture for the bpkeys analyzer.
package a

import (
	"time"

	"cbreak"
)

var obj struct{ n int }

// Orphan: a single first=true site with no partner and no Register.
func orphan() {
	cbreak.TriggerHere(cbreak.NewConflictTrigger("fix.orphan", &obj), true, time.Second) // want "single trigger site"
}

// Same role on both sides: two first=true sites can never pair.
func sameRoleA() {
	cbreak.TriggerHere(cbreak.NewConflictTrigger("fix.same", &obj), true, time.Second) // want "all 2 sites pass first=true"
}

func sameRoleB() {
	cbreak.TriggerHere(cbreak.NewConflictTrigger("fix.same", &obj), true, time.Second) // want "all 2 sites pass first=true"
}

// An n-way key whose only static site fills one slot.
func lonelySlot() {
	cbreak.TriggerHereMulti(cbreak.NewConflictTrigger("fix.slot", &obj), 0, 3, cbreak.Options{}) // want "every static site fills slot 0 of 3"
}

// String-keyed trigger in a loop: the lookup belongs outside, cached in
// a handle.
func hotLoop() {
	for i := 0; i < 100; i++ {
		cbreak.TriggerHere(cbreak.NewConflictTrigger("fix.loop", &obj), true, time.Second) // want "registry lookup per iteration"
	}
	// The partner side, so "fix.loop" itself pairs fine.
	cbreak.TriggerHere(cbreak.NewConflictTrigger("fix.loop", &obj), false, time.Second)
}

// Suppressed orphan: the directive names the analyzer and a reason.
func tolerated() {
	//cbvet:ignore bpkeys one-sided by design, exercised only under the fault injector
	cbreak.TriggerHere(cbreak.NewConflictTrigger("fix.tolerated", &obj), true, time.Second)
}

// Negative: a proper pair.
func pairedFirst() {
	cbreak.TriggerHere(cbreak.NewConflictTrigger("fix.paired", &obj), true, time.Second)
}

func pairedSecond() {
	cbreak.TriggerHere(cbreak.NewConflictTrigger("fix.paired", &obj), false, time.Second)
}

// Negative: a registered key may rendezvous through its handle even
// with a single literal site.
var handle = cbreak.Register("fix.registered")

func registered() {
	cbreak.TriggerHere(cbreak.NewConflictTrigger("fix.registered", &obj), true, time.Second)
}

// Negative: a handle-based trigger in a loop is exactly the idiom the
// loop hint asks for.
func handleLoop() {
	for i := 0; i < 100; i++ {
		handle.Trigger(cbreak.NewConflictTrigger("fix.registered", &obj), true, cbreak.Options{})
	}
}

// Negative: a non-constant role exempts the key from role analysis.
func dynamicRole(first bool) {
	cbreak.TriggerHere(cbreak.NewConflictTrigger("fix.dynamic", &obj), first, time.Second)
}
