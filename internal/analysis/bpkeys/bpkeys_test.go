package bpkeys_test

import (
	"testing"

	"cbreak/internal/analysis/bpkeys"
	"cbreak/internal/analysis/cbvettest"
)

func TestFixtures(t *testing.T) {
	res := cbvettest.Run(t, bpkeys.Analyzer, "testdata/a")
	if n := len(res.Suppressed); n != 1 {
		t.Errorf("suppressed findings = %d, want 1 (the //cbvet:ignore site)", n)
	}
}
