package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"strconv"
	"strings"

	"cbreak/internal/analysis/load"
)

// The suppression directive is
//
//	//cbvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// with "all" accepted as an analyzer name. A trailing directive silences
// matching diagnostics on its own line; a directive alone on a line
// silences the line below it (so multi-line statements can be annotated
// above). The reason is mandatory: a suppression that does not say why
// it exists is itself reported as a finding, as is one naming an unknown
// analyzer — a typo in a directive would otherwise silently suppress
// nothing.
const directivePrefix = "//cbvet:ignore"

type suppressions struct {
	known map[string]bool
	// byLine maps file -> line -> set of suppressed analyzer names
	// ("all" suppresses everything).
	byLine    map[string]map[int]map[string]bool
	malformed []Finding
	// srcLines caches file contents for standalone-vs-trailing
	// directive classification.
	srcLines map[string][]string
	// seen dedupes directives when a file is scanned twice.
	seen map[token.Pos]bool
}

func newSuppressions(known map[string]bool) *suppressions {
	return &suppressions{
		known:    known,
		byLine:   make(map[string]map[int]map[string]bool),
		srcLines: make(map[string][]string),
		seen:     make(map[token.Pos]bool),
	}
}

func (s *suppressions) scanUnit(u *load.Unit) {
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.scanComment(u.Fset, c)
			}
		}
	}
}

func (s *suppressions) scanComment(fset *token.FileSet, c *ast.Comment) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return
	}
	if s.seen[c.Pos()] {
		return
	}
	s.seen[c.Pos()] = true
	pos := fset.Position(c.Pos())
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		s.malformed = append(s.malformed, Finding{
			Analyzer: "cbvet", File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: "malformed //cbvet:ignore: want \"//cbvet:ignore <analyzer> <reason>\" (reason is mandatory)",
		})
		return
	}
	names := strings.Split(fields[0], ",")
	for _, n := range names {
		if n != "all" && !s.known[n] {
			s.malformed = append(s.malformed, Finding{
				Analyzer: "cbvet", File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: "//cbvet:ignore names unknown analyzer " + strconv.Quote(n),
			})
			return
		}
	}
	line := pos.Line
	if s.standalone(pos) {
		line++
	}
	m := s.byLine[pos.Filename]
	if m == nil {
		m = make(map[int]map[string]bool)
		s.byLine[pos.Filename] = m
	}
	set := m[line]
	if set == nil {
		set = make(map[string]bool)
		m[line] = set
	}
	for _, n := range names {
		set[n] = true
	}
}

// standalone reports whether the directive is the first token on its
// source line (only whitespace before it), in which case it covers the
// following line instead of its own.
func (s *suppressions) standalone(pos token.Position) bool {
	lines, ok := s.srcLines[pos.Filename]
	if !ok {
		data, err := os.ReadFile(pos.Filename)
		if err != nil {
			lines = nil
		} else {
			lines = strings.Split(string(data), "\n")
		}
		s.srcLines[pos.Filename] = lines
	}
	if pos.Line-1 < 0 || pos.Line-1 >= len(lines) {
		return pos.Column == 1
	}
	before := lines[pos.Line-1]
	if pos.Column-1 <= len(before) {
		before = before[:pos.Column-1]
	}
	return strings.TrimSpace(before) == ""
}

func (s *suppressions) covers(file string, line int, analyzer string) bool {
	set := s.byLine[file][line]
	return set != nil && (set["all"] || set[analyzer])
}
