package sched

// This file adds systematic schedule exploration — the CHESS-style
// baseline of the paper's related work (section 7): instead of sampling
// interleavings, enumerate them. For step programs this is exact, which
// makes it the ground truth the probabilistic machinery is validated
// against:
//
//   - Enumerate visits every interleaving (bounded) and counts how many
//     satisfy a predicate.
//   - RandomMeasure computes the exact probability that the *uniform
//     random scheduler* (sched.Sched) produces a satisfying trace —
//     which weights interleavings non-uniformly, since each step picks
//     among the currently runnable threads.

// Enumerate runs build() once per interleaving of the returned threads,
// visiting every schedule (or up to limit schedules if limit > 0). It
// returns the number of schedules visited and how many satisfied pred.
//
// The thread step functions must be deterministic for enumeration to be
// meaningful. The number of interleavings is multinomial in the step
// counts; keep programs small (e.g. two threads with <= 12 steps each).
func Enumerate(limit int, build func() ([]*Thread, func() bool)) (visited, satisfied int) {
	// First, discover the step counts with a probe instance.
	probe, _ := build()
	counts := make([]int, len(probe))
	for i, t := range probe {
		counts[i] = len(t.Steps)
	}

	// Generate thread-choice sequences recursively; re-run the program
	// from scratch for each complete schedule (steps may have shared
	// state, so replay must rebuild).
	var schedule []int
	var rec func(remaining []int)
	done := false
	rec = func(remaining []int) {
		if done {
			return
		}
		complete := true
		for ti, r := range remaining {
			if r == 0 {
				continue
			}
			complete = false
			schedule = append(schedule, ti)
			remaining[ti]--
			rec(remaining)
			remaining[ti]++
			schedule = schedule[:len(schedule)-1]
		}
		if complete {
			threads, pred := build()
			for _, ti := range schedule {
				t := threads[ti]
				t.Steps[t.pos]()
				t.pos++
			}
			visited++
			if pred() {
				satisfied++
			}
			if limit > 0 && visited >= limit {
				done = true
			}
		}
	}
	rec(counts)
	return visited, satisfied
}

// RandomMeasure computes the exact probability that the uniform random
// scheduler produces a trace satisfying pred, by weighted exploration:
// at each decision point every runnable thread is taken with probability
// 1/runnable. Exponential in program size; keep programs small.
func RandomMeasure(build func() ([]*Thread, func() bool)) float64 {
	probe, _ := build()
	counts := make([]int, len(probe))
	for i, t := range probe {
		counts[i] = len(t.Steps)
	}

	var schedule []int
	var prob float64
	var rec func(remaining []int, weight float64)
	rec = func(remaining []int, weight float64) {
		runnable := 0
		for _, r := range remaining {
			if r > 0 {
				runnable++
			}
		}
		if runnable == 0 {
			threads, pred := build()
			for _, ti := range schedule {
				t := threads[ti]
				t.Steps[t.pos]()
				t.pos++
			}
			if pred() {
				prob += weight
			}
			return
		}
		w := weight / float64(runnable)
		for ti, r := range remaining {
			if r == 0 {
				continue
			}
			schedule = append(schedule, ti)
			remaining[ti]--
			rec(remaining, w)
			remaining[ti]++
			schedule = schedule[:len(schedule)-1]
		}
	}
	rec(counts, 1)
	return prob
}
