package sched

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestAllStepsRunInOrderPerThread(t *testing.T) {
	var got []int
	a := NewThread("a",
		func() { got = append(got, 1) },
		func() { got = append(got, 2) },
		func() { got = append(got, 3) },
	)
	trace := New(42).Run(a)
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("steps out of order: %v", got)
	}
	if !reflect.DeepEqual(trace, []string{"a", "a", "a"}) {
		t.Fatalf("trace = %v", trace)
	}
}

func TestSameSeedSameTrace(t *testing.T) {
	build := func() []*Thread {
		return []*Thread{
			NewThread("a", func() {}, func() {}, func() {}),
			NewThread("b", func() {}, func() {}, func() {}),
		}
	}
	t1 := New(7).Run(build()...)
	t2 := New(7).Run(build()...)
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("same seed, different traces:\n%v\n%v", t1, t2)
	}
}

func TestDifferentSeedsEventuallyDiffer(t *testing.T) {
	build := func() []*Thread {
		return []*Thread{
			NewThread("a", func() {}, func() {}, func() {}, func() {}),
			NewThread("b", func() {}, func() {}, func() {}, func() {}),
		}
	}
	base := New(0).Run(build()...)
	for seed := int64(1); seed < 50; seed++ {
		if !reflect.DeepEqual(base, New(seed).Run(build()...)) {
			return
		}
	}
	t.Fatal("50 seeds produced identical interleavings")
}

func TestInterleavingPreservesPerThreadOrder(t *testing.T) {
	f := func(seed int64, na, nb uint8) bool {
		la, lb := int(na%8)+1, int(nb%8)+1
		var seqA, seqB []int
		a, b := NewThread("a"), NewThread("b")
		for i := 0; i < la; i++ {
			i := i
			a.AddStep(func() { seqA = append(seqA, i) })
		}
		for i := 0; i < lb; i++ {
			i := i
			b.AddStep(func() { seqB = append(seqB, i) })
		}
		trace := New(seed).Run(a, b)
		if len(trace) != la+lb {
			return false
		}
		for i := range seqA {
			if seqA[i] != i {
				return false
			}
		}
		for i := range seqB {
			if seqB[i] != i {
				return false
			}
		}
		return a.Done() && b.Done()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountSchedules(t *testing.T) {
	// Program: a writes x=1, b reads x; pred: read saw 0 (b's read ran
	// before a's write). Over many seeds both orders must occur.
	hits := CountSchedules(0, 200, func() ([]*Thread, func() bool) {
		x := 0
		seen := -1
		a := NewThread("a", func() { x = 1 })
		b := NewThread("b", func() { seen = x })
		return []*Thread{a, b}, func() bool { return seen == 0 }
	})
	if hits == 0 || hits == 200 {
		t.Fatalf("hits = %d; expected both interleavings across seeds", hits)
	}
}

func TestTraceAndString(t *testing.T) {
	s := New(1)
	s.Run(NewThread("x", func() {}))
	if got := s.Trace(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("Trace = %v", got)
	}
	if s.String() != "[x]" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestRunResetsThreads(t *testing.T) {
	n := 0
	a := NewThread("a", func() { n++ })
	s := New(3)
	s.Run(a)
	s.Run(a)
	if n != 2 {
		t.Fatalf("thread not reset between runs: n = %d", n)
	}
}
