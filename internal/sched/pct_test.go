package sched

import (
	"math"
	"testing"
)

// fig4Build returns the Figure 4 step program: thread1 runs `prefix`
// steps then reads x; thread2 writes x then runs a short tail. pred is
// "the read saw the pre-write value" (the bug).
func fig4Build(prefix, tail int) func() ([]*Thread, func() bool) {
	return func() ([]*Thread, func() bool) {
		x := 0
		sawZero := false
		t1 := NewThread("t1")
		for i := 0; i < prefix; i++ {
			t1.AddStep(func() {})
		}
		t1.AddStep(func() { sawZero = x == 0 })
		t2 := NewThread("t2")
		t2.AddStep(func() { x = 1 })
		for i := 0; i < tail; i++ {
			t2.AddStep(func() {})
		}
		return []*Thread{t1, t2}, func() bool { return sawZero }
	}
}

func TestPCTRunsAllSteps(t *testing.T) {
	ran := 0
	a := NewThread("a", func() { ran++ }, func() { ran++ })
	b := NewThread("b", func() { ran++ })
	trace := PCT(1, 2, a, b)
	if ran != 3 || len(trace) != 3 {
		t.Fatalf("ran=%d trace=%v", ran, trace)
	}
	if !a.Done() || !b.Done() {
		t.Fatal("threads not completed")
	}
}

func TestPCTDeterministicPerSeed(t *testing.T) {
	mk := func() []*Thread {
		return []*Thread{
			NewThread("a", func() {}, func() {}, func() {}),
			NewThread("b", func() {}, func() {}),
		}
	}
	tr1 := PCT(42, 3, mk()...)
	tr2 := PCT(42, 3, mk()...)
	if len(tr1) != len(tr2) {
		t.Fatal("same seed different lengths")
	}
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, tr1, tr2)
		}
	}
}

func TestPCTPriorityScheduling(t *testing.T) {
	// With depth 1 there are no change points: one thread runs to
	// completion before the other starts.
	a := NewThread("a", func() {}, func() {}, func() {})
	b := NewThread("b", func() {}, func() {}, func() {})
	trace := PCT(7, 1, a, b)
	switches := 0
	for i := 1; i < len(trace); i++ {
		if trace[i] != trace[i-1] {
			switches++
		}
	}
	if switches != 1 {
		t.Fatalf("depth-1 PCT should context-switch exactly once, got %d (%v)", switches, trace)
	}
}

func TestPCTGuarantee(t *testing.T) {
	if got := PCTGuarantee(2, 100, 1); got != 0.5 {
		t.Fatalf("d=1 guarantee = %v", got)
	}
	if got := PCTGuarantee(2, 100, 2); math.Abs(got-0.005) > 1e-12 {
		t.Fatalf("d=2 guarantee = %v", got)
	}
	if PCTGuarantee(0, 10, 1) != 0 {
		t.Fatal("degenerate guarantee nonzero")
	}
}

func TestPCTBeatsRandomOnDeepOrderingBug(t *testing.T) {
	// Figure 4 shape: the bug needs thread1's late read to beat
	// thread2's first step. Uniform random scheduling finds it with
	// probability (1/2)^(prefix+1) — hopeless for prefix 60. PCT with
	// depth 1 finds it whenever thread1 draws the higher priority: ~1/2.
	const prefix, tail, runs = 60, 5, 400
	build := fig4Build(prefix, tail)

	randomHits := CountSchedules(0, runs, build)
	pctHits := CountPCT(0, runs, 1, build)

	if randomHits > runs/50 {
		t.Fatalf("random scheduler found the deep bug %d/%d times — workload too easy", randomHits, runs)
	}
	if pctHits < runs/3 || pctHits > 2*runs/3 {
		t.Fatalf("PCT depth-1 hit rate %d/%d, want ~1/2", pctHits, runs)
	}
	// The PCT empirical rate must respect its own lower bound.
	k := prefix + 1 + tail + 1
	if float64(pctHits)/float64(runs) < PCTGuarantee(2, k, 1)/2 {
		t.Fatalf("PCT below guarantee: %d/%d < %v", pctHits, runs, PCTGuarantee(2, k, 1))
	}
}

func TestPrioritiesSnapshotSorted(t *testing.T) {
	a, b := NewThread("a"), NewThread("b")
	got := prioritiesSnapshot(map[*Thread]int{a: 5, b: 2})
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("snapshot = %v", got)
	}
}
