// Package sched provides a seeded, deterministic random interleaver for
// "step programs": virtual threads whose work is divided into explicit
// steps. The paper's probabilistic analysis (section 3) models threads as
// sequences of N uniform steps; this package realizes that model so the
// analysis can be validated empirically, and it also serves as a
// deterministic substrate for unit-testing schedule-sensitive code
// without real-time sleeps.
package sched

import (
	"fmt"
	"math/rand"
)

// Thread is a virtual thread: a name and an ordered list of steps. The
// scheduler runs steps one at a time; a step must not block.
type Thread struct {
	// Name identifies the thread in traces.
	Name string
	// Steps is the thread's program.
	Steps []func()

	pos int
}

// NewThread builds a thread from step functions.
func NewThread(name string, steps ...func()) *Thread {
	return &Thread{Name: name, Steps: steps}
}

// AddStep appends a step.
func (t *Thread) AddStep(f func()) { t.Steps = append(t.Steps, f) }

// Done reports whether the thread has executed all its steps.
func (t *Thread) Done() bool { return t.pos >= len(t.Steps) }

// Sched interleaves threads using a seeded RNG: at every scheduling
// point one runnable thread is chosen uniformly at random and executes
// exactly one step. The same seed always produces the same interleaving
// for the same thread structure, so schedule-dependent tests are
// reproducible.
type Sched struct {
	rng   *rand.Rand
	trace []string
}

// New returns a scheduler with the given seed.
func New(seed int64) *Sched {
	return &Sched{rng: rand.New(rand.NewSource(seed))}
}

// Run interleaves the threads to completion and returns the trace: the
// sequence of thread names in execution order. Threads are reset to
// their first step before running.
func (s *Sched) Run(threads ...*Thread) []string {
	for _, t := range threads {
		t.pos = 0
	}
	s.trace = s.trace[:0]
	runnable := make([]*Thread, 0, len(threads))
	for {
		runnable = runnable[:0]
		for _, t := range threads {
			if !t.Done() {
				runnable = append(runnable, t)
			}
		}
		if len(runnable) == 0 {
			return append([]string(nil), s.trace...)
		}
		t := runnable[s.rng.Intn(len(runnable))]
		t.Steps[t.pos]()
		t.pos++
		s.trace = append(s.trace, t.Name)
	}
}

// Trace returns the last run's trace.
func (s *Sched) Trace() []string { return append([]string(nil), s.trace...) }

// String renders the last trace compactly.
func (s *Sched) String() string { return fmt.Sprint(s.trace) }

// CountSchedules runs the program under `runs` different seeds starting
// at seed0 and returns how many runs satisfied pred (evaluated after each
// run). It is the workhorse for "what fraction of schedules hit the bug"
// measurements on step programs.
func CountSchedules(seed0 int64, runs int, build func() ([]*Thread, func() bool)) int {
	hits := 0
	for i := 0; i < runs; i++ {
		threads, pred := build()
		New(seed0 + int64(i)).Run(threads...)
		if pred() {
			hits++
		}
	}
	return hits
}
