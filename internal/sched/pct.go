package sched

import (
	"math/rand"
	"sort"
)

// This file implements PCT (Burckhardt et al., ASPLOS 2010 — reference
// [5] of the paper) as a baseline scheduler for step programs: a
// priority-based randomized scheduler with a probabilistic guarantee of
// finding bugs of a given depth.
//
// The paper positions concurrent breakpoints against such testing tools:
// PCT *finds* a depth-d bug with probability >= 1/(n*k^(d-1)) per run,
// while a breakpoint *reproduces* a known bug with probability close to
// one. The BenchmarkBaseline_PCT benchmark quantifies that contrast on
// the Figure 4 program.

// PCT runs the threads under a PCT scheduler with bug depth d: each
// thread gets a random distinct priority, the scheduler always runs the
// runnable thread with the highest priority, and d-1 random change
// points lower the running thread's priority as the execution crosses
// them. It returns the trace of thread names.
func PCT(seed int64, d int, threads ...*Thread) []string {
	if d < 1 {
		d = 1
	}
	rng := rand.New(rand.NewSource(seed))
	for _, t := range threads {
		t.pos = 0
	}
	n := len(threads)
	totalSteps := 0
	for _, t := range threads {
		totalSteps += len(t.Steps)
	}

	// Initial priorities: a random permutation of d, d+1, ..., d+n-1
	// (all above the change-point priorities 1..d-1).
	prio := make(map[*Thread]int, n)
	perm := rng.Perm(n)
	for i, t := range threads {
		prio[t] = d + perm[i]
	}
	// d-1 change points drawn uniformly from the step indices.
	changeAt := make(map[int]int) // step index -> new priority
	for i := 1; i < d; i++ {
		if totalSteps > 0 {
			changeAt[rng.Intn(totalSteps)] = d - i
		}
	}

	var trace []string
	for step := 0; ; step++ {
		var best *Thread
		for _, t := range threads {
			if t.Done() {
				continue
			}
			if best == nil || prio[t] > prio[best] {
				best = t
			}
		}
		if best == nil {
			return trace
		}
		if p, ok := changeAt[step]; ok {
			prio[best] = p
			// Re-pick after the priority change, as PCT does.
			continue
		}
		best.Steps[best.pos]()
		best.pos++
		trace = append(trace, best.Name)
	}
}

// PCTGuarantee returns PCT's theoretical lower bound on the per-run
// probability of exposing a bug of depth d in a program with n threads
// and k total steps: 1/(n * k^(d-1)).
func PCTGuarantee(n, k, d int) float64 {
	if n <= 0 || k <= 0 || d < 1 {
		return 0
	}
	p := 1.0 / float64(n)
	for i := 1; i < d; i++ {
		p /= float64(k)
	}
	return p
}

// CountPCT runs the program under `runs` PCT seeds and returns how many
// satisfied pred — the empirical bug-finding rate to compare against
// PCTGuarantee and against the uniform random scheduler.
func CountPCT(seed0 int64, runs, depth int, build func() ([]*Thread, func() bool)) int {
	hits := 0
	for i := 0; i < runs; i++ {
		threads, pred := build()
		PCT(seed0+int64(i), depth, threads...)
		if pred() {
			hits++
		}
	}
	return hits
}

// prioritiesSnapshot exposes deterministic ordering for tests.
func prioritiesSnapshot(prio map[*Thread]int) []int {
	out := make([]int, 0, len(prio))
	for _, p := range prio {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
