package sched

import (
	"math"
	"testing"
)

// binom computes C(n, k) for small arguments.
func binom(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	out := 1
	for i := 0; i < k; i++ {
		out = out * (n - i) / (i + 1)
	}
	return out
}

func TestEnumerateCountsAllInterleavings(t *testing.T) {
	// Two threads with a and b steps have C(a+b, a) interleavings.
	for _, tc := range []struct{ a, b int }{{1, 1}, {2, 3}, {4, 4}} {
		visited, _ := Enumerate(0, func() ([]*Thread, func() bool) {
			t1, t2 := NewThread("a"), NewThread("b")
			for i := 0; i < tc.a; i++ {
				t1.AddStep(func() {})
			}
			for i := 0; i < tc.b; i++ {
				t2.AddStep(func() {})
			}
			return []*Thread{t1, t2}, func() bool { return true }
		})
		if want := binom(tc.a+tc.b, tc.a); visited != want {
			t.Fatalf("(%d,%d): visited %d, want %d", tc.a, tc.b, visited, want)
		}
	}
}

func TestEnumerateSatisfiedFraction(t *testing.T) {
	// Figure 4 shape with prefix 2: read-before-write holds only in the
	// schedule where all of t1's 3 steps precede t2's single step —
	// 1 of the C(4,3)=4 interleavings.
	visited, satisfied := Enumerate(0, fig4Build(2, 0))
	if visited != 4 || satisfied != 1 {
		t.Fatalf("visited=%d satisfied=%d, want 4 and 1", visited, satisfied)
	}
}

func TestEnumerateLimit(t *testing.T) {
	visited, _ := Enumerate(3, func() ([]*Thread, func() bool) {
		t1 := NewThread("a", func() {}, func() {}, func() {})
		t2 := NewThread("b", func() {}, func() {}, func() {})
		return []*Thread{t1, t2}, func() bool { return true }
	})
	if visited != 3 {
		t.Fatalf("visited = %d, want 3 (limited)", visited)
	}
}

func TestRandomMeasureMatchesClosedForm(t *testing.T) {
	// For the Figure 4 program with prefix p and no tail, the random
	// scheduler satisfies read-before-write iff it picks thread1 for
	// the first p+1 decisions: probability (1/2)^(p+1).
	for p := 0; p <= 4; p++ {
		got := RandomMeasure(fig4Build(p, 0))
		want := math.Pow(0.5, float64(p+1))
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("prefix %d: measure = %v, want %v", p, got, want)
		}
	}
}

func TestRandomMeasureMatchesEmpirical(t *testing.T) {
	// The exact measure must agree with the sampling scheduler within
	// binomial noise.
	build := fig4Build(3, 2)
	exact := RandomMeasure(build)
	const runs = 4000
	hits := CountSchedules(11, runs, build)
	emp := float64(hits) / float64(runs)
	sd := math.Sqrt(exact * (1 - exact) / runs)
	if math.Abs(emp-exact) > 5*sd+0.01 {
		t.Fatalf("empirical %v vs exact %v (sd %v)", emp, exact, sd)
	}
}

func TestRandomMeasureTotalsOne(t *testing.T) {
	// With pred == always true, the measure must be exactly 1.
	got := RandomMeasure(func() ([]*Thread, func() bool) {
		t1 := NewThread("a", func() {}, func() {})
		t2 := NewThread("b", func() {}, func() {}, func() {})
		return []*Thread{t1, t2}, func() bool { return true }
	})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("total measure = %v", got)
	}
}

// fig4Build is shared with pct_test.go.
