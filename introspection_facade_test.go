package cbreak_test

// Facade audit tests: every introspection accessor the internal engine
// grew across the supervision, overload, durability, and telemetry
// layers must be reachable from the public package, exercised here
// against the default engine.

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cbreak"
)

// hitDefault rendezvouses one hit on the default engine.
func hitDefault(t *testing.T, name string) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cbreak.TriggerHere(cbreak.NewPredTrigger(name, nil, nil, nil), true, 2*time.Second)
	}()
	if !cbreak.TriggerHere(cbreak.NewPredTrigger(name, nil, nil, nil), false, 2*time.Second) {
		t.Fatalf("%s: second side missed", name)
	}
	wg.Wait()
}

func TestIntrospectionPassthroughs(t *testing.T) {
	cbreak.Reset()
	defer cbreak.Reset()

	if _, ok := cbreak.Overload(); ok {
		t.Fatal("fresh engine reports overload config")
	}
	cbreak.SetOverloadConfig(&cbreak.OverloadConfig{GlobalHighWater: 32})
	defer cbreak.SetOverloadConfig(nil)
	if ov, ok := cbreak.Overload(); !ok || ov.GlobalHighWater != 32 {
		t.Fatalf("Overload() = %+v, %v", ov, ok)
	}

	hitDefault(t, "facade.intro")
	if cbreak.Stats("facade.intro").Hits() != 1 {
		t.Fatal("Stats passthrough missed the hit")
	}
	if len(cbreak.Events()) == 0 {
		t.Fatal("Events passthrough empty after a hit")
	}
	if cbreak.PostponedCount("facade.intro") != 0 || cbreak.MultiPostponedCount("facade.intro") != 0 {
		t.Fatal("postponed counts nonzero at rest")
	}
	if !strings.Contains(cbreak.EngineReport(), "facade.intro") {
		t.Fatal("EngineReport missing the breakpoint row")
	}
	if cbreak.DurableSinkInstalled() {
		t.Fatal("no sink installed, but reported")
	}

	// IncidentCounts is monotonic across Reset; a release that finds no
	// waiter must not move it.
	before := cbreak.IncidentCounts()[cbreak.KindWatchdogRelease.String()]
	if cbreak.ForceRelease("facade.intro", 1, cbreak.KindWatchdogRelease, "noop") {
		t.Fatal("release of a non-postponed gid reported true")
	}
	if after := cbreak.IncidentCounts()[cbreak.KindWatchdogRelease.String()]; after != before {
		t.Fatalf("no-op release moved incident count %d -> %d", before, after)
	}
}

func TestBreakpointToggleOnFacade(t *testing.T) {
	cbreak.Reset()
	defer cbreak.Reset()
	const name = "facade.toggle"
	if !cbreak.BreakpointEnabled(name) {
		t.Fatal("unseen breakpoint should report enabled")
	}
	cbreak.SetBreakpointEnabled(name, false)
	if cbreak.BreakpointEnabled(name) {
		t.Fatal("disable did not stick")
	}
	if cbreak.TriggerHere(cbreak.NewPredTrigger(name, nil, nil, nil), true, time.Millisecond) {
		t.Fatal("disabled breakpoint hit")
	}
	if cbreak.Stats(name).Arrivals() != 0 {
		t.Fatal("disabled arrival counted")
	}
	cbreak.SetBreakpointEnabled(name, true)
	hitDefault(t, name)
}

func TestTelemetryFacade(t *testing.T) {
	cbreak.Reset()
	defer cbreak.Reset()

	sub := cbreak.Telemetry().Subscribe(64)
	defer sub.Cancel()
	hitDefault(t, "facade.telemetry")

	deadline := time.After(2 * time.Second)
	var sawHit bool
	for !sawHit {
		select {
		case rec := <-sub.C():
			if rec.Kind == cbreak.RecordEvent && rec.Event.Breakpoint == "facade.telemetry" {
				sawHit = true
			}
		case <-deadline:
			t.Fatal("no telemetry record for the hit")
		}
	}

	reg := cbreak.NewMetricRegistry()
	cbreak.RegisterMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `cbreak_bp_hits_total{breakpoint="facade.telemetry"} 1`) {
		t.Fatalf("exposition missing facade hit counter:\n%s", sb.String())
	}
}

func TestWaitGraphFacade(t *testing.T) {
	cbreak.Reset()
	defer cbreak.Reset()

	sup := cbreak.StartSupervisor(cbreak.WaitGraphConfig{Interval: time.Millisecond})
	defer sup.Stop()
	if sup.Scans() == 0 {
		sup.Scan()
	}
	if sup.Scans() == 0 {
		t.Fatal("supervisor never scanned")
	}
	if got := sup.Reports(); len(got) != 0 {
		t.Fatalf("idle engine produced reports: %+v", got)
	}
	// Kind constants are re-exported.
	if cbreak.ReportDeadlock == cbreak.ReportPostponeStall {
		t.Fatal("report kinds collide")
	}
}
