module cbreak

go 1.22
