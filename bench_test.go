// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus microbenchmarks of the breakpoint engine and
// ablations of its design choices. Custom metrics:
//
//	hit-prob    — fraction of iterations in which the bug manifested
//	bp-hit      — fraction of iterations in which a breakpoint was hit
//	mtte-ms     — mean time to error across buggy iterations
//	overhead-%  — runtime overhead of enabled breakpoints vs disabled
//
// Run with: go test -bench=. -benchmem
package cbreak

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/apps/fig4"
	"cbreak/internal/apps/hedc"
	"cbreak/internal/apps/log4j"
	"cbreak/internal/apps/swing"
	"cbreak/internal/core"
	"cbreak/internal/harness"
	"cbreak/internal/locks"
	"cbreak/internal/memory"
	"cbreak/internal/predict"
	"cbreak/internal/prob"
	"cbreak/internal/sched"
)

// benchRow runs one table row for b.N iterations with breakpoints
// enabled and reports the probability metrics.
func benchRow(b *testing.B, timeout time.Duration, fn harness.RunFunc) {
	b.Helper()
	buggy, hits := 0, 0
	var errTime time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := core.NewEngine()
		res := fn(e, true, timeout)
		if res.Status.Buggy() {
			buggy++
			errTime += res.Elapsed
		}
		if res.BPHit {
			hits++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(buggy)/float64(b.N), "hit-prob")
	b.ReportMetric(float64(hits)/float64(b.N), "bp-hit")
	if buggy > 0 {
		b.ReportMetric(float64(errTime.Milliseconds())/float64(buggy), "mtte-ms")
	}
}

// BenchmarkTable1 regenerates every Java-benchmark row of Table 1: the
// per-row reproduction probability (hit-prob should be ~1.0, matching
// the paper's Prob. column) and the runtime per run.
func BenchmarkTable1(b *testing.B) {
	for _, row := range harness.Table1Rows() {
		row := row
		name := fmt.Sprintf("%s/%s", row.Benchmark, row.BugLabel)
		if row.Comments != "" {
			name += "/" + sanitize(row.Comments)
		}
		b.Run(name, func(b *testing.B) {
			timeout := row.Timeout
			if timeout == 0 {
				timeout = harness.ShortPause
			}
			benchRow(b, timeout, row.Run)
		})
	}
}

// BenchmarkTable1_Overhead measures the overhead column of Table 1 for a
// representative subset: runtime with breakpoints enabled vs disabled.
func BenchmarkTable1_Overhead(b *testing.B) {
	for _, row := range harness.Table1Rows() {
		row := row
		switch row.Benchmark {
		case "moldyn", "montecarlo", "raytracer", "stringbuffer", "cache4j":
		default:
			continue // stall rows measure deadline, not overhead
		}
		b.Run(fmt.Sprintf("%s/%s", row.Benchmark, row.BugLabel), func(b *testing.B) {
			var with, without time.Duration
			for i := 0; i < b.N; i++ {
				e := core.NewEngine()
				e.SetEnabled(false)
				start := time.Now()
				row.Run(e, false, harness.ShortPause)
				without += time.Since(start)

				e2 := core.NewEngine()
				start = time.Now()
				row.Run(e2, true, harness.ShortPause)
				with += time.Since(start)
			}
			b.ReportMetric(harness.Overhead(without, with), "overhead-%")
		})
	}
}

// BenchmarkTable2 regenerates Table 2: the C/C++-analog bugs with their
// mean time to error.
func BenchmarkTable2(b *testing.B) {
	for _, row := range harness.Table2Rows() {
		row := row
		b.Run(sanitize(row.Benchmark+"/"+row.Error), func(b *testing.B) {
			benchRow(b, harness.ShortPause, row.Run)
		})
	}
}

// BenchmarkSection5_Log4jTable regenerates the section 5 resolve-order
// table: per-order stall and hit rates.
func BenchmarkSection5_Log4jTable(b *testing.B) {
	for _, pair := range log4j.Section5Pairs() {
		pair := pair
		b.Run(sanitize(pair.String()), func(b *testing.B) {
			stalls, hits := 0, 0
			for i := 0; i < b.N; i++ {
				e := core.NewEngine()
				res := log4j.Run(log4j.Config{Engine: e, Mode: log4j.ModeContention, Pair: pair,
					Breakpoint: true, Timeout: harness.ShortPause, StallAfter: harness.StallDeadline})
				if res.Status == appkit.Stall {
					stalls++
				}
				if res.BPHit {
					hits++
				}
			}
			b.ReportMetric(float64(stalls)/float64(b.N), "stall-rate")
			b.ReportMetric(float64(hits)/float64(b.N), "bp-hit")
		})
	}
}

// BenchmarkSection62_PauseSweep regenerates the section 6.2 study: hit
// probability as a function of the pause time for hedc race1 and the
// swing deadlock.
func BenchmarkSection62_PauseSweep(b *testing.B) {
	pauses := []time.Duration{2 * time.Millisecond, 5 * time.Millisecond, harness.ShortPause}
	for _, pause := range pauses {
		pause := pause
		b.Run("hedc-race1/"+pause.String(), func(b *testing.B) {
			benchRow(b, pause, func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
				return hedc.Run(hedc.Config{Engine: e, Bug: hedc.Race1, Breakpoint: bp,
					Timeout: to, Jitter: 8 * time.Millisecond})
			})
		})
		b.Run("swing-deadlock1/"+pause.String(), func(b *testing.B) {
			benchRow(b, pause, func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
				return swing.Run(swing.Config{Engine: e, Breakpoint: bp, Timeout: to,
					StallAfter: 2 * harness.StallDeadline, EventJitter: 4 * time.Millisecond})
			})
		})
	}
}

// BenchmarkSection63_Precision regenerates the section 6.3 ablation: the
// runtime effect of the local-predicate refinements.
func BenchmarkSection63_Precision(b *testing.B) {
	for _, v := range harness.PrecisionVariants() {
		v := v
		b.Run(sanitize(v.Name+"/"+v.Refinement), func(b *testing.B) {
			benchRow(b, harness.ShortPause, v.Run)
		})
	}
}

// BenchmarkFigure4_Model regenerates the section 3 / Figure 4 numbers:
// the analytic probabilities (reported as metrics) and the empirical
// Figure 4 program with its breakpoint.
func BenchmarkFigure4_Model(b *testing.B) {
	b.Run("analytic", func(b *testing.B) {
		const n, mBig, m, tPause = 100000, 10, 2, 1000
		var base, trig, gain float64
		for i := 0; i < b.N; i++ {
			base = prob.ExactBase(n, m)
			trig = prob.ExactTriggerLB(n, mBig, m, tPause)
			gain = prob.ImprovementFactor(n, mBig, m, tPause)
		}
		b.ReportMetric(base, "base-prob")
		b.ReportMetric(trig, "trigger-prob")
		b.ReportMetric(gain, "gain-x")
	})
	b.Run("monte-carlo", func(b *testing.B) {
		const n, mBig, m, tPause = 100000, 10, 2, 1000
		var mc float64
		for i := 0; i < b.N; i++ {
			mc = prob.MonteCarloTrigger(n, mBig, m, tPause, 2000, int64(i))
		}
		b.ReportMetric(mc, "mc-trigger-prob")
	})
	b.Run("fig4-with-bp", func(b *testing.B) {
		benchRow(b, harness.LongPause, func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return fig4.Run(fig4.Config{Engine: e, Breakpoint: bp, Timeout: to})
		})
	})
	b.Run("fig4-step-model", func(b *testing.B) {
		var p float64
		for i := 0; i < b.N; i++ {
			p = fig4.StepProbability(200, 5, 500, int64(i))
		}
		b.ReportMetric(p, "natural-prob")
	})
}

// BenchmarkAblation_NaiveSleep compares BTrigger against the "ad-hoc
// sleep" trick of section 8: pausing one side unconditionally instead of
// rendezvousing. The naive sleep still requires luck; BTrigger does not.
func BenchmarkAblation_NaiveSleep(b *testing.B) {
	scenario := func(useBTrigger bool) bool {
		e := core.NewEngine()
		obj := new(int)
		raceHit := false
		var order []int
		var mu sync.Mutex
		record := func(v int) {
			mu.Lock()
			order = append(order, v)
			mu.Unlock()
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // the "late" thread
			defer wg.Done()
			time.Sleep(time.Duration(time.Now().UnixNano()%2000) * time.Microsecond)
			if useBTrigger {
				e.TriggerHereAnd(core.NewConflictTrigger("ab", obj), true,
					core.Options{Timeout: 100 * time.Millisecond}, func() { record(1) })
			} else {
				record(1)
			}
		}()
		go func() { // the "early" thread
			defer wg.Done()
			if useBTrigger {
				e.TriggerHere(core.NewConflictTrigger("ab", obj), false,
					core.Options{Timeout: 100 * time.Millisecond})
			} else {
				time.Sleep(500 * time.Microsecond) // the ad-hoc sleep
			}
			record(2)
		}()
		wg.Wait()
		mu.Lock()
		raceHit = len(order) == 2 && order[0] == 1 && order[1] == 2
		mu.Unlock()
		return raceHit
	}
	b.Run("btrigger", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if scenario(true) {
				hits++
			}
		}
		b.ReportMetric(float64(hits)/float64(b.N), "order-prob")
	})
	b.Run("naive-sleep", func(b *testing.B) {
		hits := 0
		for i := 0; i < b.N; i++ {
			if scenario(false) {
				hits++
			}
		}
		b.ReportMetric(float64(hits)/float64(b.N), "order-prob")
	})
}

// BenchmarkBaseline_PCT contrasts reproducing a known bug with a
// breakpoint against *finding* it with schedule-exploration baselines on
// the Figure 4 step program: uniform random scheduling (hopeless for a
// deep ordering bug), PCT depth 1 (its 1/n guarantee), and the
// breakpoint (deterministic). This quantifies the paper's positioning
// against CHESS/PCT-style tools.
func BenchmarkBaseline_PCT(b *testing.B) {
	const prefix, tail = 60, 5
	build := func() ([]*sched.Thread, func() bool) {
		x := 0
		sawZero := false
		t1 := sched.NewThread("t1")
		for i := 0; i < prefix; i++ {
			t1.AddStep(func() {})
		}
		t1.AddStep(func() { sawZero = x == 0 })
		t2 := sched.NewThread("t2")
		t2.AddStep(func() { x = 1 })
		for i := 0; i < tail; i++ {
			t2.AddStep(func() {})
		}
		return []*sched.Thread{t1, t2}, func() bool { return sawZero }
	}
	b.Run("random-scheduler", func(b *testing.B) {
		hits := sched.CountSchedules(0, b.N, build)
		b.ReportMetric(float64(hits)/float64(b.N), "find-prob")
	})
	b.Run("pct-depth1", func(b *testing.B) {
		hits := sched.CountPCT(0, b.N, 1, build)
		b.ReportMetric(float64(hits)/float64(b.N), "find-prob")
		b.ReportMetric(sched.PCTGuarantee(2, prefix+tail+2, 1), "guarantee")
	})
	b.Run("breakpoint", func(b *testing.B) {
		benchRow(b, harness.ShortPause, func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return fig4.Run(fig4.Config{Engine: e, Breakpoint: bp, Timeout: to, Work: 5000})
		})
	})
}

// BenchmarkAblation_OrderWindow measures design decision 2 of DESIGN.md:
// how often the first-action side's next instruction actually executes
// first when both sides use plain TriggerHere (no handshake), with and
// without the engine's ordering window.
func BenchmarkAblation_OrderWindow(b *testing.B) {
	run := func(window time.Duration) func(b *testing.B) {
		return func(b *testing.B) {
			ordered := 0
			for i := 0; i < b.N; i++ {
				e := core.NewEngine()
				e.OrderWindow = window
				obj := new(int)
				var first, second time.Time
				var wg sync.WaitGroup
				wg.Add(2)
				go func() {
					defer wg.Done()
					e.TriggerHere(core.NewConflictTrigger("ow", obj), true,
						core.Options{Timeout: time.Second})
					first = time.Now() // the "next instruction"
				}()
				go func() {
					defer wg.Done()
					e.TriggerHere(core.NewConflictTrigger("ow", obj), false,
						core.Options{Timeout: time.Second})
					second = time.Now()
				}()
				wg.Wait()
				if first.Before(second) {
					ordered++
				}
			}
			b.ReportMetric(float64(ordered)/float64(b.N), "order-prob")
		}
	}
	b.Run("window-100us", run(100*time.Microsecond))
	b.Run("window-0", run(0))
}

// Engine microbenchmarks: the cost of a breakpoint in each outcome
// class. Disabled breakpoints must be nearly free (they stay in
// production code like assertions).
func BenchmarkTriggerDisabled(b *testing.B) {
	e := core.NewEngine()
	e.SetEnabled(false)
	tr := core.NewConflictTrigger("micro", new(int))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TriggerHere(tr, true, core.Options{})
	}
}

func BenchmarkTriggerLocalFalse(b *testing.B) {
	e := core.NewEngine()
	tr := core.NewConflictTrigger("micro", new(int))
	opts := core.Options{ExtraLocal: func() bool { return false }}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TriggerHere(tr, true, opts)
	}
}

func BenchmarkTriggerRendezvous(b *testing.B) {
	e := core.NewEngine()
	obj := new(int)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			e.TriggerHere(core.NewConflictTrigger("micro-rv", obj), true,
				core.Options{Timeout: time.Second})
		}()
		go func() {
			defer wg.Done()
			e.TriggerHere(core.NewConflictTrigger("micro-rv", obj), false,
				core.Options{Timeout: time.Second})
		}()
		wg.Wait()
	}
}

// sanitize converts row labels into benchmark-name-safe strings.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '(', ')', '#':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// benchTracedTraffic runs a fixed pattern of instrumented cell/lock
// traffic: one locked store plus one lock-free load per iteration, the
// access mix the predictive-analysis recorder journals per event.
func benchTracedTraffic(b *testing.B, sp *memory.Space, mu *locks.Mutex) {
	b.Helper()
	c := memory.NewCell(sp, "bench.traced", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu.Lock()
		c.Store("bench:store", int64(i))
		mu.Unlock()
		//cbvet:ignore conflicts the mixed locked/lock-free traffic is the workload being priced, single-goroutine here
		c.Load("bench:load")
	}
}

// BenchmarkTraceRecordOverhead prices the predictive-race trace
// recorder (internal/predict): the same instrumented traffic with the
// recorder detached and attached (vector-clock maintenance plus one
// CRC-framed journal record per event, SyncNone). cbbench pairs the
// RecorderOn/RecorderOff series into the recorder_deltas section of
// BENCH_engine.json, so recording cost is tracked per commit.
func BenchmarkTraceRecordOverhead(b *testing.B) {
	b.Run("RecorderOff", func(b *testing.B) {
		benchTracedTraffic(b, memory.NewSpace(), locks.NewMutex("bench.mu"))
	})
	b.Run("RecorderOn", func(b *testing.B) {
		rec, err := predict.NewRecorder(b.TempDir(), predict.RecorderOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer rec.Close()
		sp := memory.NewSpace()
		mu := locks.NewMutex("bench.mu")
		rec.Instrument(sp, mu)
		benchTracedTraffic(b, sp, mu)
	})
}
