// Handles: the pre-resolved fast path for hot breakpoint sites.
//
// cbreak.Register resolves a breakpoint's name once into a handle;
// handle.Trigger then skips the per-call registry lookup. This demo
// shows the three contracts that matter in practice: handles and
// string-keyed calls rendezvous with each other, disabled handles are
// no-ops, and handles transparently survive Reset (while previously
// obtained stats freeze at the old generation's values).
//
//	go run ./examples/handles
package main

import (
	"fmt"
	"sync"
	"time"

	"cbreak"
)

// hotBP is resolved once at init — the recommended shape for a site
// that fires on every request.
var hotBP = cbreak.Register("handles.demo")

func rendezvous() (handleHit, stringHit bool) {
	obj := new(int)
	opts := cbreak.Options{Timeout: 500 * time.Millisecond}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Second side arrives through the classic string-keyed API:
		// same name, same breakpoint, no handle required.
		stringHit = cbreak.TriggerHereOpts(cbreak.NewConflictTrigger("handles.demo", obj), false, opts)
	}()
	handleHit = hotBP.Trigger(cbreak.NewConflictTrigger("handles.demo", obj), true, opts)
	wg.Wait()
	return handleHit, stringHit
}

func main() {
	cbreak.SetEnabled(true)
	cbreak.Reset()

	// 1. A handle arrival and a string-keyed arrival match each other.
	h, s := rendezvous()
	fmt.Printf("mixed-API rendezvous: handle side hit=%v, string side hit=%v\n", h, s)
	fmt.Printf("stats after one hit: hits=%d arrivals=%d\n",
		hotBP.Stats().Hits(), hotBP.Stats().Arrivals())

	// 2. Disabled, the handle is a no-op: no pause, no match, no counts.
	cbreak.SetEnabled(false)
	missed := 0
	for i := 0; i < 1000; i++ {
		if !hotBP.Trigger(cbreak.NewConflictTrigger("handles.demo", new(int)), true, cbreak.Options{}) {
			missed++
		}
	}
	fmt.Printf("disabled: 1000 calls, %d no-ops, hits still %d\n", missed, hotBP.Stats().Hits())
	cbreak.SetEnabled(true)

	// 3. Reset retires the breakpoint's state; the handle re-resolves on
	// its next use, while a stats pointer taken before the Reset stays
	// frozen at the old generation's final values.
	old := hotBP.Stats()
	cbreak.Reset()
	h, s = rendezvous()
	fmt.Printf("post-Reset rendezvous: handle side hit=%v, string side hit=%v\n", h, s)
	fmt.Printf("old stats frozen at hits=%d; fresh stats hits=%d\n",
		old.Hits(), hotBP.Stats().Hits())
}
