// Quickstart: the paper's Figures 1 and 7 — making a data race
// deterministic with a concurrent breakpoint.
//
// Two goroutines share a Point: foo writes p.x while bar reads it. The
// read observing the pre-write value is a schedule-dependent Heisenbug.
// A ConflictTrigger pair named "trigger1" pins the racy interleaving:
// the writer runs its store first, so the reader always sees 10.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"
	"time"

	"cbreak"
)

// Point is the shared object of Figure 1.
type Point struct{ x int }

// foo is the writing thread: `p1.x = 10` at "line 3".
func foo(p1 *Point) {
	// First action: the write happens before the read once the
	// breakpoint is hit. TriggerHereAnd runs the guarded instruction
	// inside the call, so the ordering is strict.
	cbreak.TriggerHereAnd(cbreak.NewConflictTrigger("trigger1", p1), true,
		cbreak.Options{Timeout: 500 * time.Millisecond},
		func() { p1.x = 10 })
}

// bar is the reading thread: `t = p2.x` at "line 9".
func bar(p2 *Point) int {
	cbreak.TriggerHere(cbreak.NewConflictTrigger("trigger1", p2), false, 500*time.Millisecond)
	return p2.x
}

func runOnce() int {
	p := &Point{}
	var got int
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); foo(p) }()
	go func() { defer wg.Done(); got = bar(p) }()
	wg.Wait()
	return got
}

func main() {
	// With breakpoints enabled, the racy write-before-read resolution
	// is forced every time.
	cbreak.SetEnabled(true)
	sawTen := 0
	const runs = 10
	for i := 0; i < runs; i++ {
		cbreak.Reset()
		if runOnce() == 10 {
			sawTen++
		}
	}
	fmt.Printf("breakpoints ON : reader saw the write %d/%d times\n", sawTen, runs)

	// Disabled, the breakpoints cost one atomic load and the program
	// behaves naturally (either interleaving may win).
	cbreak.SetEnabled(false)
	sawTen = 0
	for i := 0; i < runs; i++ {
		if runOnce() == 10 {
			sawTen++
		}
	}
	fmt.Printf("breakpoints OFF: reader saw the write %d/%d times (schedule-dependent)\n", sawTen, runs)
}
