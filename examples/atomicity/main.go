// Atomicity example: the paper's Figure 3 — the classic
// java.lang.StringBuffer append/setLength atomicity violation, made
// deterministic with an AtomicityTrigger pair.
//
// append(sb) reads sb's length and then copies that many characters,
// acquiring sb's monitor separately for each call. A concurrent
// setLength(0) between the two calls makes the cached length stale and
// the copy panics — the analog of StringIndexOutOfBoundsException.
//
//	go run ./examples/atomicity
package main

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"cbreak"
)

// buffer is a tiny synchronized string buffer.
type buffer struct {
	mu   *cbreak.Mutex
	data []byte
}

func newBuffer(name, s string) *buffer {
	return &buffer{mu: cbreak.NewMutex(name), data: []byte(s)}
}

func (b *buffer) length() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.data)
}

func (b *buffer) getChars(end int, dst []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if end > len(b.data) {
		panic(fmt.Sprintf("StringIndexOutOfBounds: srcEnd=%d length=%d", end, len(b.data)))
	}
	copy(dst, b.data[:end])
}

func (b *buffer) setLength(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.data = b.data[:n]
}

// appendTo is Figure 3's append: length (line 444), breakpoint window,
// getChars (line 449).
func (dst *buffer) appendTo(sb *buffer) {
	n := sb.length() // line 444
	// Line 449 side of the breakpoint (239, 449, t1.sb == t2.this).
	cbreak.TriggerHere(cbreak.NewAtomicityTrigger("sb-atomicity", sb), false, 500*time.Millisecond)
	tmp := make([]byte, n)
	sb.getChars(n, tmp) // line 449
	dst.mu.Lock()
	dst.data = append(dst.data, tmp...)
	dst.mu.Unlock()
}

func runOnce() (panicked bool) {
	sb := newBuffer("sb", strings.Repeat("x", 32))
	dst := newBuffer("dst", "")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		dst.appendTo(sb)
	}()
	go func() {
		defer wg.Done()
		// Line 239 side: setLength runs first once the breakpoint hits.
		cbreak.TriggerHereAnd(cbreak.NewAtomicityTrigger("sb-atomicity", sb), true,
			cbreak.Options{Timeout: 500 * time.Millisecond},
			func() { sb.setLength(0) })
	}()
	wg.Wait()
	return panicked
}

func main() {
	cbreak.SetEnabled(true)
	const runs = 10
	exceptions := 0
	for i := 0; i < runs; i++ {
		cbreak.Reset()
		if runOnce() {
			exceptions++
		}
	}
	fmt.Printf("breakpoints ON : StringIndexOutOfBounds %d/%d runs\n", exceptions, runs)

	cbreak.SetEnabled(false)
	exceptions = 0
	for i := 0; i < runs; i++ {
		if runOnce() {
			exceptions++
		}
	}
	fmt.Printf("breakpoints OFF: StringIndexOutOfBounds %d/%d runs\n", exceptions, runs)
}
