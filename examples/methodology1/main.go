// Methodology I walk-through (paper section 5): find a data race with a
// testing tool, read its report, insert a concurrent breakpoint at the
// two reported sites, and reproduce the bug deterministically.
//
// The program runs all three steps end to end on a Figure-1-style
// account race: a withdrawal's check-then-act races with a deposit, so
// the balance can go negative.
//
//	go run ./examples/methodology1
package main

import (
	"fmt"
	"sync"
	"time"

	"cbreak"
)

// account has a racy balance via an instrumented cell, so the detector
// can observe the accesses.
type account struct {
	balance *cbreak.MemCell
}

// withdraw is the buggy check-then-act: the balance read at site :17 and
// the write at site :19 are not atomic.
func (a *account) withdraw(amount int64, bp bool, engine *cbreak.Engine) bool {
	bal := a.balance.Load("bank.go:17")
	if bal < amount {
		return false
	}
	if bp {
		engine.TriggerHere(cbreak.NewConflictTrigger("bank-race", a.balance), false,
			cbreak.Options{Timeout: 300 * time.Millisecond})
	}
	a.balance.Store("bank.go:19", bal-amount)
	return true
}

// spend is the other side: a concurrent withdrawal through the same
// non-atomic sequence at site :28. It reports whether it spent.
func (a *account) spend(amount int64, bp bool, engine *cbreak.Engine) bool {
	bal := a.balance.Load("bank.go:28")
	if bal < amount {
		return false
	}
	run := func() { a.balance.Store("bank.go:30", bal-amount) }
	if bp {
		engine.TriggerHereAnd(cbreak.NewConflictTrigger("bank-race", a.balance), true,
			cbreak.Options{Timeout: 300 * time.Millisecond}, run)
	} else {
		run()
	}
	return true
}

// scenario returns true when BOTH withdrawals succeeded — spending 160
// from a 100 balance, the double-spend the race allows. Naturally the
// card payment lands a beat after the ATM withdrawal and is declined.
func scenario(bp bool, engine *cbreak.Engine, space *cbreak.MemSpace) bool {
	acct := &account{balance: cbreak.NewMemCell(space, "acct.balance", 100)}
	var ok1, ok2 bool
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); ok1 = acct.withdraw(80, bp, engine) }()
	go func() {
		defer wg.Done()
		time.Sleep(time.Millisecond) // the card payment arrives later
		ok2 = acct.spend(80, bp, engine)
	}()
	wg.Wait()
	return ok1 && ok2
}

func main() {
	// Step 1: run the scenario under the conflict detector.
	space := cbreak.NewMemSpace()
	detector := cbreak.NewDetector()
	space.Trace(detector)
	engine := cbreak.NewEngine()
	engine.SetEnabled(false)
	scenario(false, engine, space)
	space.Trace(nil)

	fmt.Println("Step 1 — detector report:")
	for _, r := range detector.Reports() {
		fmt.Println(r.Format())
	}
	fmt.Println()

	// Step 2: the report names the two sites; the breakpoint pair in
	// withdraw/spend above is inserted exactly there.
	fmt.Println("Step 2 — breakpoint (bank.go:30, bank.go:19, t1.balance == t2.balance) inserted.")
	fmt.Println()

	// Step 3: reproduce. Both withdrawals read balance=100 before
	// either writes: the account double-spends.
	engine.SetEnabled(true)
	overdrafts := 0
	const runs = 10
	for i := 0; i < runs; i++ {
		engine.Reset()
		if scenario(true, engine, nil) {
			overdrafts++
		}
	}
	fmt.Printf("Step 3 — with the breakpoint the double-spend manifests %d/%d runs\n", overdrafts, runs)

	natural := 0
	engine.SetEnabled(false)
	for i := 0; i < runs; i++ {
		if scenario(false, engine, nil) {
			natural++
		}
	}
	fmt.Printf("          without it, %d/%d (schedule-dependent)\n", natural, runs)
}
