// Command durability demonstrates the durable event/incident tee
// through the public cbreak facade: a DurableSink implementation
// receives a synchronous copy of every engine event and guard incident,
// so a crashed process leaves its breakpoint history behind instead of
// losing the in-memory rings with the heap. The canonical sink journals
// to a crash-safe WAL (cbtables -durable-events); this demo uses an
// in-memory sink so its output stays deterministic and diffable.
package main

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"cbreak"
)

func section(name string) { fmt.Printf("== %s ==\n", name) }

// memSink is a minimal DurableSink: it buckets events by kind and keeps
// every incident. Sinks run synchronously on the trigger hot path, so a
// real one should be this cheap (or buffer) and must never call back
// into the engine.
type memSink struct {
	mu        sync.Mutex
	events    map[string]int
	incidents []cbreak.Incident
}

func newMemSink() *memSink { return &memSink{events: make(map[string]int)} }

func (s *memSink) RecordEvent(ev cbreak.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events[ev.Kind.String()]++
}

func (s *memSink) RecordIncident(in cbreak.Incident) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.incidents = append(s.incidents, in)
}

func (s *memSink) report() {
	s.mu.Lock()
	defer s.mu.Unlock()
	kinds := make([]string, 0, len(s.events))
	for k := range s.events {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("sink events: %s=%d\n", k, s.events[k])
	}
	for _, in := range s.incidents {
		fmt.Printf("sink incident: kind=%s breakpoint=%s\n", in.Kind, in.Breakpoint)
	}
}

func rendezvous(name string, obj *int) (first, second bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		second = cbreak.TriggerHere(cbreak.NewConflictTrigger(name, obj), false, 5*time.Second)
	}()
	time.Sleep(50 * time.Millisecond) // let the second side postpone first
	first = cbreak.TriggerHere(cbreak.NewConflictTrigger(name, obj), true, 5*time.Second)
	wg.Wait()
	return first, second
}

func main() {
	var obj int

	// --- Teeing events -----------------------------------------------------
	// With a sink attached, one rendezvous produces a fixed event shape:
	// both sides arrive, the early side postpones, the pair hits.
	section("event tee")
	sink := newMemSink()
	cbreak.SetDurableSink(sink)
	firstHit, secondHit := rendezvous("durable.pair", &obj)
	fmt.Printf("rendezvous hit: first=%v second=%v\n", firstHit, secondHit)

	// --- Teeing incidents --------------------------------------------------
	// An injected predicate panic is absorbed by the guard layer and the
	// incident is teed to the sink alongside the in-memory log.
	section("incident tee")
	plan := cbreak.NewFaultPlan().PanicGlobal("durable.panic", cbreak.FirstSide, 1)
	cbreak.SetFaultInjector(plan)
	rendezvous("durable.panic", &obj)
	cbreak.SetFaultInjector(nil)
	fmt.Printf("in-memory panic incidents: %d\n", cbreak.IncidentCount(cbreak.KindPanic))
	sink.report()

	// --- Detaching ---------------------------------------------------------
	// SetDurableSink(nil) removes the tee: later traffic still updates the
	// engine's in-memory stats but the sink's counts stay frozen.
	section("detach")
	cbreak.SetDurableSink(nil)
	before := func() int {
		sink.mu.Lock()
		defer sink.mu.Unlock()
		total := 0
		for _, n := range sink.events {
			total += n
		}
		return total
	}()
	rendezvous("durable.after", &obj)
	after := func() int {
		sink.mu.Lock()
		defer sink.mu.Unlock()
		total := 0
		for _, n := range sink.events {
			total += n
		}
		return total
	}()
	fmt.Printf("sink frozen after detach: %v\n", before == after)
	for _, st := range cbreak.SnapshotStats() {
		if st.Name == "durable.after" {
			fmt.Printf("engine still counting: arrivals=%d hits=%d\n", st.Arrivals, st.Hits)
		}
	}
	cbreak.Reset()
	fmt.Println("done")
}
