// Methodology II walk-through: the paper's section 5 log4j case study.
//
// The workflow, exactly as the paper describes it:
//
//  1. Stress testing shows occasional stalls (~5% of runs).
//
//  2. A conflict detector lists the lock contentions among the
//     AsyncAppender sites (lines 100, 236, 277, 309).
//
//  3. For each contention pair, a concurrent breakpoint forces both
//     resolve orders; the stall and breakpoint-hit rates per order are
//     tabulated.
//
//  4. The pair whose forced order stalls every run with the breakpoint
//     hit every run (236 -> 309) is the bug; it becomes the regression
//     breakpoint.
//
//     go run ./examples/methodology2
package main

import (
	"fmt"
	"time"

	"cbreak/internal/apps/appkit"
	"cbreak/internal/apps/log4j"
	"cbreak/internal/core"
	"cbreak/internal/harness"
)

func main() {
	const runs = 8

	// Step 1: stress runs without breakpoints.
	natural := harness.Measure(runs, false, harness.ShortPause,
		func(e *core.Engine, bp bool, to time.Duration) appkit.Result {
			return log4j.Run(log4j.Config{Engine: e, Pair: log4j.Pair{First: log4j.S236, Second: log4j.S309},
				Breakpoint: bp, Timeout: to, StallAfter: harness.StallDeadline})
		})
	fmt.Printf("Step 1 — stress testing: %d/%d runs stalled naturally\n\n",
		natural.Statuses[appkit.Stall], natural.Runs)

	// Step 2: the contention list (see also `cbdetect -scenario contention`).
	fmt.Println("Step 2 — conflict detector reports contentions among sites 100, 236, 277, 309")
	fmt.Println()

	// Step 3: the resolve-order table.
	fmt.Println("Step 3 — force each resolve order:")
	fmt.Print(harness.Log4jTable(runs).Render())
	fmt.Println()

	// Step 4: conclusion.
	fmt.Println("Step 4 — 236 -> 309 stalls every run with the breakpoint hit every")
	fmt.Println("run: the missed notification is between setBufferSize and the")
	fmt.Println("dispatcher's sleep decision. Keep that breakpoint as the regression")
	fmt.Println("test (see examples/regression).")
}
