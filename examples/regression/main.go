// Regression example: section 8 of the paper — keeping a fixed
// Heisenbug's breakpoints as a concurrent regression test, and using a
// Schedule to pin a whole interleaving for a unit test.
//
//	go run ./examples/regression
package main

import (
	"fmt"
	"sync"
	"time"

	"cbreak"
)

func main() {
	breakpointRegression()
	scheduleUnitTest()
}

// breakpointRegression re-runs a fixed bug's scenario and asserts that
// its breakpoint still gets hit — if a code change re-opens the bug,
// the regression reports it; if the sites diverge so the breakpoint can
// no longer be reached, the regression flags that too.
func breakpointRegression() {
	engine := cbreak.NewEngine()
	reg := &cbreak.Regression{Engine: engine, Required: []string{"fixed-bug-17"}}

	shared := new(int)
	scenario := func() {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			engine.TriggerHere(cbreak.NewConflictTrigger("fixed-bug-17", shared), true,
				cbreak.Options{Timeout: time.Second})
			// ... the formerly-buggy write, now under proper locking.
		}()
		go func() {
			defer wg.Done()
			engine.TriggerHere(cbreak.NewConflictTrigger("fixed-bug-17", shared), false,
				cbreak.Options{Timeout: time.Second})
			// ... the formerly-buggy read.
		}()
		wg.Wait()
	}
	res := reg.Run(scenario)
	fmt.Printf("breakpoint regression: allHit=%v (%s)\n", res.AllHit, res)
}

// scheduleUnitTest pins an interleaving in which the reader's
// observation lands exactly between the writer's two updates. Points
// follow an announce-after-action / gate-before-action discipline: an
// actor announces a point after completing an action and gates on a
// point before starting the next, so actions — not just Reach calls —
// are ordered.
func scheduleUnitTest() {
	s := cbreak.NewSchedule(2*time.Second,
		"write-1-done", "read-go", "read-done", "write-2-go")
	var observed int
	x := 0
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // writer
		defer wg.Done()
		x = 1
		s.Reach("write-1-done") // announce
		s.Reach("write-2-go")   // gate: waits for the read to finish
		x = 2
	}()
	go func() { // reader
		defer wg.Done()
		s.Reach("read-go") // gate: waits for the first write
		observed = x
		s.Reach("read-done") // announce
	}()
	wg.Wait()
	fmt.Printf("schedule unit test: observed=%d (want 1: read pinned between the writes), done=%v\n",
		observed, s.Done())
}
