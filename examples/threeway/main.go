// Three-thread breakpoint example: section 2 of the paper notes that
// concurrent breakpoints generalize to more than two threads. This
// program has a bug that needs THREE goroutines in a specific state: a
// writer resets a batch, a logger snapshots it, and a committer
// publishes the snapshot — the corruption only manifests when the reset
// lands between the snapshot and the publish while the committer holds a
// stale count.
//
//	go run ./examples/threeway
package main

import (
	"fmt"
	"sync"
	"time"

	"cbreak"
)

type batch struct {
	mu    sync.Mutex
	items []int
}

func (b *batch) add(v int) {
	b.mu.Lock()
	b.items = append(b.items, v)
	b.mu.Unlock()
}

func (b *batch) snapshotLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.items)
}

func (b *batch) take(n int) []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n > len(b.items) {
		n = len(b.items) // defensive clamp hides the bug as a silent loss
	}
	out := append([]int(nil), b.items[:n]...)
	b.items = b.items[n:]
	return out
}

func (b *batch) reset() {
	b.mu.Lock()
	b.items = b.items[:0]
	b.mu.Unlock()
}

// runOnce returns the number of published items; the full batch is 8, so
// anything less is the three-thread corruption.
func runOnce(bp bool) int {
	const arity = 3
	b := &batch{}
	for i := 0; i < 8; i++ {
		b.add(i)
	}
	var published []int
	var wg sync.WaitGroup
	wg.Add(3)
	opts := cbreak.Options{Timeout: 500 * time.Millisecond}

	nCh := make(chan int, 1)
	go func() { // slot 0: the logger snapshots the count
		defer wg.Done()
		if bp {
			cbreak.TriggerHereMultiAnd(cbreak.NewConflictTrigger("threeway", b), 0, arity, opts,
				func() { nCh <- b.snapshotLen() })
		} else {
			nCh <- b.snapshotLen()
		}
	}()
	go func() { // slot 1: the writer resets the batch after other work,
		// so naturally the publish almost always beats it.
		defer wg.Done()
		time.Sleep(2 * time.Millisecond)
		if bp {
			cbreak.TriggerHereMultiAnd(cbreak.NewConflictTrigger("threeway", b), 1, arity, opts, b.reset)
		} else {
			b.reset()
		}
	}()
	go func() { // slot 2: the committer publishes the snapshotted count
		defer wg.Done()
		if bp {
			cbreak.TriggerHereMultiAnd(cbreak.NewConflictTrigger("threeway", b), 2, arity, opts,
				func() { published = b.take(<-nCh) })
		} else {
			published = b.take(<-nCh)
		}
	}()
	wg.Wait()
	return len(published)
}

func main() {
	cbreak.SetEnabled(true)
	const runs = 10
	corrupted := 0
	for i := 0; i < runs; i++ {
		cbreak.Reset()
		if runOnce(true) < 8 {
			corrupted++
		}
	}
	fmt.Printf("3-way breakpoint ON : batch lost items in %d/%d runs\n", corrupted, runs)

	corrupted = 0
	for i := 0; i < runs; i++ {
		if runOnce(false) < 8 {
			corrupted++
		}
	}
	fmt.Printf("3-way breakpoint OFF: batch lost items in %d/%d runs (schedule-dependent)\n", corrupted, runs)
}
