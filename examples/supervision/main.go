// Command supervision demonstrates the engine's supervision surface
// through the public cbreak facade: overload shedding with bounded
// postponed populations, adaptive postponement budgets, and the
// wait-graph healing primitives (postponed-waiter snapshots and early
// force-release). Output is deterministic (counters and bucketed
// booleans, no raw durations) so two runs can be diffed.
package main

import (
	"fmt"
	"sync"
	"time"

	"cbreak"
)

func section(name string) { fmt.Printf("== %s ==\n", name) }

// parkTrigger returns a trigger that always postpones and never finds
// a partner: local predicate true, global predicate false. Each call
// site gets its own instance.
func parkTrigger(name string) *cbreak.PredTrigger {
	return cbreak.NewPredTrigger(name, nil,
		func() bool { return true },
		func(other *cbreak.PredTrigger) bool { return false })
}

// waitPostponed polls until the engine-wide postponed population
// reaches want (bounded, so a regression fails loudly instead of
// hanging the demo).
func waitPostponed(want int64) bool {
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if cbreak.PostponedTotal() >= want {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

func main() {
	// --- Overload shedding -----------------------------------------------
	// A per-shard cap of 2: the first two arrivals postpone, the next two
	// are shed outright (OutcomeShed, like an open circuit breaker) with
	// an overload-shed incident each.
	section("overload shedding")
	cbreak.SetOverloadConfig(&cbreak.OverloadConfig{MaxPerShard: 2})

	bpOverload := cbreak.Register("demo.overload")
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bpOverload.Trigger(parkTrigger("demo.overload"), true,
				cbreak.Options{Timeout: 300 * time.Millisecond})
		}()
	}
	fmt.Printf("two arrivals postponed: %v\n", waitPostponed(2))
	for i := 0; i < 2; i++ {
		bpOverload.Trigger(parkTrigger("demo.overload"), true,
			cbreak.Options{Timeout: 300 * time.Millisecond})
	}
	wg.Wait()
	for _, st := range cbreak.SnapshotStats() {
		if st.Name == "demo.overload" {
			fmt.Printf("stats: arrivals=%d postpones=%d sheds=%d\n",
				st.Arrivals, st.Postpones, st.Sheds)
		}
	}
	fmt.Printf("overload-shed incidents: %d\n", cbreak.IncidentCount(cbreak.KindOverloadShed))
	fmt.Printf("postponed population drained: %v\n", cbreak.PostponedTotal() == 0)

	// --- Adaptive budgets ------------------------------------------------
	// Between SoftWater and GlobalHighWater the granted budget shrinks
	// linearly toward MinBudget: with five goroutines already postponed,
	// a request for 2.5s is granted roughly a fifth of that, so the
	// arrival returns long before its requested budget.
	section("adaptive budgets")
	cbreak.Reset()
	cbreak.SetOverloadConfig(&cbreak.OverloadConfig{
		GlobalHighWater: 6,
		SoftWater:       1,
		MinBudget:       25 * time.Millisecond,
	})
	bpBudget := cbreak.Register("demo.budget")
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bpBudget.Trigger(parkTrigger("demo.budget"), true,
				cbreak.Options{Timeout: 400 * time.Millisecond})
		}()
	}
	fmt.Printf("five fillers postponed: %v\n", waitPostponed(5))
	start := time.Now()
	hit := cbreak.TriggerHere(parkTrigger("demo.budget"), true, 2500*time.Millisecond)
	elapsed := time.Since(start)
	wg.Wait()
	fmt.Printf("crowded arrival hit: %v, released well before its 2.5s request: %v\n",
		hit, elapsed < time.Second)

	// --- Wait-graph healing primitives -----------------------------------
	// The primitives the wait-graph supervisor heals stalls with:
	// PostponedWaiters snapshots who is parked where, and ForceRelease
	// frees a victim early — indistinguishable at the call site from an
	// ordinary budget expiry — recording a cycle-break incident.
	section("healing primitives")
	cbreak.Reset()
	cbreak.SetOverloadConfig(nil)
	done := make(chan bool, 1)
	go func() {
		done <- cbreak.TriggerHere(parkTrigger("demo.heal"), true, 30*time.Second)
	}()
	if !waitPostponed(1) {
		fmt.Println("victim never postponed")
		return
	}
	waiters := cbreak.PostponedWaiters()
	fmt.Printf("postponed waiters: %d\n", len(waiters))
	for _, w := range waiters {
		fmt.Printf("waiter at %q slot=%d arity=%d\n", w.Breakpoint, w.Slot, w.Arity)
	}
	released := cbreak.ForceRelease(waiters[0].Breakpoint, waiters[0].GID,
		cbreak.KindCycleBreak, "demo: breaking a simulated stall cycle")
	start = time.Now()
	healedHit := <-done
	fmt.Printf("force-released: %v, victim hit: %v, freed well before its 30s budget: %v\n",
		released, healedHit, time.Since(start) < 5*time.Second)
	fmt.Printf("cycle-break incidents: %d\n", cbreak.IncidentCount(cbreak.KindCycleBreak))
	for _, in := range cbreak.Incidents() {
		if in.Kind == cbreak.KindCycleBreak {
			fmt.Printf("incident: kind=%s breakpoint=%s\n", in.Kind, in.Breakpoint)
		}
	}
	cbreak.Reset()
	fmt.Println("done")
}
