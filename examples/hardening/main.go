// Command hardening demonstrates the hardening layer through the public
// cbreak facade: fault injection, panic isolation, the postponement
// watchdog, circuit breakers, incident accounting, and schedule timeout
// diagnostics. Its output is deterministic (no raw durations) so two
// runs can be diffed to demonstrate reproducible fault injection.
package main

import (
	"fmt"
	"sync"
	"time"

	"cbreak"
)

func section(name string) { fmt.Printf("== %s ==\n", name) }

func main() {
	var obj int

	// --- Panic isolation -------------------------------------------------
	// The first side's injected global-predicate panic is absorbed; the
	// already-postponed second side is released promptly instead of
	// waiting out its full 5s budget.
	section("panic isolation")
	plan := cbreak.NewFaultPlan().PanicGlobal("demo.panic", cbreak.FirstSide, 1)
	cbreak.SetFaultInjector(plan)

	var wg sync.WaitGroup
	var secondHit bool
	var secondWait time.Duration
	wg.Add(1)
	go func() {
		defer wg.Done()
		start := time.Now()
		secondHit = cbreak.TriggerHere(cbreak.NewConflictTrigger("demo.panic", &obj), false, 5*time.Second)
		secondWait = time.Since(start)
	}()
	time.Sleep(50 * time.Millisecond) // let the second side postpone
	firstHit := cbreak.TriggerHere(cbreak.NewConflictTrigger("demo.panic", &obj), true, 5*time.Second)
	wg.Wait()
	fmt.Printf("first side hit: %v (predicate panicked)\n", firstHit)
	fmt.Printf("second side hit: %v, released well before its 5s budget: %v\n",
		secondHit, secondWait < time.Second)
	fmt.Printf("panic incidents: %d\n", cbreak.IncidentCount(cbreak.KindPanic))
	fmt.Printf("faults applied: %d\n", len(plan.Applied()))

	// --- Watchdog --------------------------------------------------------
	// A wedged waiter (select timer sabotaged to 24h) is force-released
	// once it overstays its postponement budget plus the grace period.
	section("watchdog")
	cbreak.Reset()
	cbreak.SetFaultInjector(cbreak.NewFaultPlan().WedgeWait("demo.wedge", cbreak.FirstSide, 1))
	cbreak.StartWatchdog(10*time.Millisecond, 20*time.Millisecond)
	start := time.Now()
	//cbvet:ignore bpkeys intentional one-sided arrival: the watchdog demo needs a wait that never pairs
	wedgedHit := cbreak.TriggerHere(cbreak.NewConflictTrigger("demo.wedge", &obj), true, 50*time.Millisecond)
	wedgedWait := time.Since(start)
	cbreak.StopWatchdog()
	cbreak.StopWatchdog() // idempotent
	fmt.Printf("wedged side hit: %v, freed well before its sabotaged 24h wait: %v\n",
		wedgedHit, wedgedWait < 5*time.Second)
	fmt.Printf("watchdog releases: %d\n", cbreak.IncidentCount(cbreak.KindWatchdogRelease))

	// --- Circuit breaker -------------------------------------------------
	// Six lonely arrivals against a 5ms budget: four postpone and time
	// out (tripping at MinSamples=4, rate 1.0 >= 0.5), the last two are
	// shed without postponement. After the 150ms backoff a real
	// rendezvous serves as the half-open probe and re-arms the breaker.
	section("circuit breaker")
	cbreak.Reset()
	cbreak.SetFaultInjector(nil)
	cfg := cbreak.DefaultBreakerConfig()
	cfg.MinSamples = 4
	cfg.TimeoutRate = 0.5
	cfg.Backoff = 150 * time.Millisecond
	cbreak.SetBreakerConfig(&cfg)
	bpBreaker := cbreak.Register("demo.breaker")
	for i := 0; i < 6; i++ {
		bpBreaker.Trigger(cbreak.NewConflictTrigger("demo.breaker", &obj), true,
			cbreak.Options{Timeout: 5 * time.Millisecond})
	}
	if snap, ok := cbreak.BreakerStatus("demo.breaker"); ok {
		fmt.Printf("after 6 lonely arrivals: state=%s trips=%d\n", snap.State, snap.Trips)
	}
	for _, st := range cbreak.SnapshotStats() {
		if st.Name == "demo.breaker" {
			fmt.Printf("stats: arrivals=%d postpones=%d timeouts=%d sheds=%d\n",
				st.Arrivals, st.Postpones, st.Timeouts, st.Sheds)
		}
	}
	time.Sleep(250 * time.Millisecond) // let the backoff expire
	wg.Add(1)
	go func() {
		defer wg.Done()
		cbreak.TriggerHere(cbreak.NewConflictTrigger("demo.breaker", &obj), false, 500*time.Millisecond)
	}()
	time.Sleep(50 * time.Millisecond)
	probeHit := cbreak.TriggerHere(cbreak.NewConflictTrigger("demo.breaker", &obj), true, 500*time.Millisecond)
	wg.Wait()
	if snap, ok := cbreak.BreakerStatus("demo.breaker"); ok {
		fmt.Printf("after probe rendezvous (hit=%v): state=%s trips=%d rearms=%d\n",
			probeHit, snap.State, snap.Trips, snap.Rearms)
	}
	fmt.Printf("breaker incidents: trip=%d probe=%d rearm=%d\n",
		cbreak.IncidentCount(cbreak.KindBreakerTrip),
		cbreak.IncidentCount(cbreak.KindBreakerProbe),
		cbreak.IncidentCount(cbreak.KindBreakerRearm))
	if _, ok := cbreak.BreakerStatus("never-seen"); !ok {
		fmt.Println("unknown breakpoint has no breaker: ok=false")
	}
	cbreak.SetBreakerConfig(nil)

	// --- Disabled engine -------------------------------------------------
	// With the engine disabled, arrivals return immediately and the
	// installed fault plan never fires.
	section("disabled engine")
	cbreak.Reset()
	unused := cbreak.NewFaultPlan().PanicLocal("demo.disabled", cbreak.BothSides)
	cbreak.SetFaultInjector(unused)
	cbreak.SetEnabled(false)
	//cbvet:ignore bpkeys intentional one-sided arrival: a disabled engine returns immediately, no partner needed
	disabledHit := cbreak.TriggerHere(cbreak.NewConflictTrigger("demo.disabled", &obj), true, time.Second)
	cbreak.SetEnabled(true)
	cbreak.SetFaultInjector(nil)
	fmt.Printf("disabled arrival hit: %v, faults applied: %d\n", disabledHit, len(unused.Applied()))

	// --- Schedule timeout diagnostics ------------------------------------
	// Point "a" never arrives; "b" and "c" block and time out. The
	// structured violations name the stuck point and the blocker.
	section("schedule diagnostics")
	s := cbreak.NewSchedule(50*time.Millisecond, "a", "b", "c")
	wg.Add(2)
	go func() { defer wg.Done(); s.Reach("b") }()
	time.Sleep(20 * time.Millisecond)
	go func() { defer wg.Done(); s.Reach("c") }()
	wg.Wait()
	for _, v := range s.ViolationDetails() {
		fmt.Printf("point %q blocked by %q (also pending: %v)\n", v.Point, v.Blocker, v.Pending)
	}
	g := cbreak.NewScheduleGraph(30 * time.Millisecond)
	g.Point("sink", "dep1", "dep2")
	g.Reach("dep1")
	if !g.Reach("sink") {
		for _, v := range g.ViolationDetails() {
			fmt.Printf("graph point %q blocked by %q (unmet: %v)\n", v.Point, v.Blocker, v.Pending)
		}
	}
	fmt.Println("done")
}
