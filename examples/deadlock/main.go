// Deadlock example: the paper's Figures 2 and 9 — reproducing the
// Jigsaw SocketClientFactory deadlock with a DeadlockTrigger pair.
//
// Two goroutines acquire the factory monitor and the csList monitor in
// opposite orders. Naturally the run almost always completes; with the
// "trigger2" breakpoint both goroutines are held at the deadlock state
// and released into the cycle, stalling deterministically.
//
//	go run ./examples/deadlock
package main

import (
	"fmt"
	"time"

	"cbreak"
)

// factoryLike mimics SocketClientFactory's two monitors.
type factoryLike struct {
	this   *cbreak.Mutex
	csList *cbreak.Mutex
}

// clientConnectionFinished locks csList (line 623) and then the factory
// (line 574 via decrIdleCount).
func (f *factoryLike) clientConnectionFinished(bp bool) {
	f.csList.LockAt("SocketClientFactory.java:623")
	defer f.csList.Unlock()
	if bp {
		cbreak.TriggerHere(cbreak.NewDeadlockTrigger("trigger2", f.csList, f.this),
			true, 300*time.Millisecond)
	}
	//cbvet:ignore lockorder intentional inversion: this example exists to reproduce the Jigsaw deadlock
	f.this.LockAt("SocketClientFactory.java:574")
	defer f.this.Unlock()
	// decrIdleCount body.
}

// killClients locks the factory (line 867) and then csList (line 872).
func (f *factoryLike) killClients(bp bool) {
	f.this.LockAt("SocketClientFactory.java:867")
	defer f.this.Unlock()
	if bp {
		cbreak.TriggerHere(cbreak.NewDeadlockTrigger("trigger2", f.this, f.csList),
			false, 300*time.Millisecond)
	}
	//cbvet:ignore lockorder intentional inversion: this example exists to reproduce the Jigsaw deadlock
	f.csList.LockAt("SocketClientFactory.java:872")
	defer f.csList.Unlock()
}

// runOnce returns true if the run stalled (deadlocked).
func runOnce(bp bool) bool {
	f := &factoryLike{
		this:   cbreak.NewMutex("factory"),
		csList: cbreak.NewMutex("csList"),
	}
	done := make(chan struct{}, 2)
	go func() { f.clientConnectionFinished(bp); done <- struct{}{} }()
	go func() { f.killClients(bp); done <- struct{}{} }()
	stall := time.NewTimer(time.Second)
	defer stall.Stop()
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-stall.C:
			return true
		}
	}
	return false
}

func main() {
	cbreak.SetEnabled(true)
	const runs = 5
	stalls := 0
	for i := 0; i < runs; i++ {
		cbreak.Reset()
		if runOnce(true) {
			stalls++
		}
	}
	fmt.Printf("breakpoints ON : deadlocked %d/%d runs\n", stalls, runs)

	stalls = 0
	for i := 0; i < runs; i++ {
		if runOnce(false) {
			stalls++
		}
	}
	fmt.Printf("breakpoints OFF: deadlocked %d/%d runs\n", stalls, runs)
}
