// Command telemetry demonstrates the typed telemetry core through the
// public cbreak facade: every introspection surface — engine events,
// guard incidents, wait-graph reports — fans out through one record
// bus (cbreak.Telemetry), and one declared metric catalog renders the
// same state as Prometheus text (cbreak.NewMetricRegistry +
// cbreak.RegisterMetrics). Per-breakpoint runtime disable
// (cbreak.SetBreakpointEnabled) shows the live-control half: the same
// switch cmd/cbserverd flips over HTTP. Output is deterministic —
// counters and sorted names, no raw durations — so two runs diff
// clean.
package main

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"cbreak"
)

func section(name string) { fmt.Printf("== %s ==\n", name) }

// rendezvous drives one two-sided hit on name.
func rendezvous(name string) bool {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cbreak.TriggerHere(cbreak.NewPredTrigger(name, nil, nil, nil), true, 2*time.Second)
	}()
	ok := cbreak.TriggerHere(cbreak.NewPredTrigger(name, nil, nil, nil), false, 2*time.Second)
	wg.Wait()
	return ok
}

func main() {
	cbreak.Reset()

	// One bounded subscription sees every record kind; a subscriber
	// that falls behind loses records (counted), never stalls the
	// engine.
	sub := cbreak.Telemetry().Subscribe(256)
	defer sub.Cancel()

	section("records on the bus")
	for i := 0; i < 3; i++ {
		if !rendezvous("telemetry.hit") {
			fmt.Println("rendezvous missed")
		}
	}
	// A trigger with no partner times out: a different event kind.
	//cbvet:ignore bpkeys intentional one-sided arrival: the timeout event is the point
	cbreak.TriggerHere(cbreak.NewPredTrigger("telemetry.lonely", nil, nil, nil),
		true, 10*time.Millisecond)

	counts := map[string]int{}
	deadline := time.NewTimer(200 * time.Millisecond)
	defer deadline.Stop()
	for drained := false; !drained; {
		select {
		case rec := <-sub.C():
			counts[rec.Kind.String()]++
		case <-deadline.C:
			drained = true
		}
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("kind %-16s records>=6: %v\n", k, counts[k] >= 6)
	}
	fmt.Printf("bus drops: %d\n", cbreak.Telemetry().Dropped())

	section("live disable (the cbserverd switch)")
	cbreak.SetBreakpointEnabled("telemetry.hit", false)
	fmt.Printf("enabled after disable: %v\n", cbreak.BreakpointEnabled("telemetry.hit"))
	//cbvet:ignore bpkeys intentional one-sided arrival: a disabled breakpoint returns immediately, no partner needed
	hit := cbreak.TriggerHere(cbreak.NewPredTrigger("telemetry.hit", nil, nil, nil),
		true, 10*time.Millisecond)
	fmt.Printf("disabled trigger hit: %v\n", hit)
	cbreak.SetBreakpointEnabled("telemetry.hit", true)
	fmt.Printf("enabled after re-enable: %v\n", cbreak.BreakpointEnabled("telemetry.hit"))

	section("one catalog, rendered as prometheus text")
	reg := cbreak.NewMetricRegistry()
	cbreak.RegisterMetrics(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		fmt.Println("exposition error:", err)
		return
	}
	for _, want := range []string{
		`cbreak_engine_enabled 1`,
		`cbreak_bp_hits_total{breakpoint="telemetry.hit"} 3`,
		`cbreak_bp_enabled{breakpoint="telemetry.hit"} 1`,
		`cbreak_bp_timeouts_total{breakpoint="telemetry.lonely"} 1`,
	} {
		fmt.Printf("exposition has %-52q %v\n", want, strings.Contains(sb.String(), want))
	}

	cbreak.Reset()
}
