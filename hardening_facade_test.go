package cbreak

import (
	"testing"
	"time"
)

// TestFacadeHardening exercises the hardening surface end to end on the
// default engine: fault injection, panic isolation, the watchdog, the
// incident log, breakers, and stats snapshots.
func TestFacadeHardening(t *testing.T) {
	Reset()
	SetEnabled(true)
	defer func() {
		SetFaultInjector(nil)
		SetBreakerConfig(nil)
		StopWatchdog()
		SetIsolateActionPanics(false)
		Reset()
	}()

	basePanics := IncidentCount(KindPanic)
	baseReleases := IncidentCount(KindWatchdogRelease)

	// Panic isolation via an injected local-predicate panic.
	SetFaultInjector(NewFaultPlan().PanicLocal("facade.bp", FirstSide, 1))
	if hit := TriggerHere(NewConflictTrigger("facade.bp", new(int)), true, time.Millisecond); hit {
		t.Fatal("panicked trigger reported a hit")
	}
	if got := IncidentCount(KindPanic); got != basePanics+1 {
		t.Fatalf("panic incidents = %d, want %d", got, basePanics+1)
	}

	// Watchdog frees a wedged waiter.
	SetFaultInjector(NewFaultPlan().WedgeWait("facade.bp", BothSides))
	StartWatchdog(10*time.Millisecond, 10*time.Millisecond)
	done := make(chan bool, 1)
	go func() {
		done <- TriggerHere(NewConflictTrigger("facade.bp", new(int)), true, 20*time.Millisecond)
	}()
	select {
	case hit := <-done:
		if hit {
			t.Fatal("wedged waiter reported a hit")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog did not free the wedged waiter")
	}
	if got := IncidentCount(KindWatchdogRelease); got != baseReleases+1 {
		t.Fatalf("watchdog incidents = %d, want %d", got, baseReleases+1)
	}
	SetFaultInjector(nil)

	// Breakers trip a 100%-timeout breakpoint and report via the facade.
	cfg := BreakerConfig{MinSamples: 2, TimeoutRate: 0.9, Backoff: time.Hour}
	SetBreakerConfig(&cfg)
	for i := 0; i < 2; i++ {
		TriggerHere(NewConflictTrigger("facade.bp", new(int)), true, time.Millisecond)
	}
	snap, ok := BreakerStatus("facade.bp")
	if !ok || snap.State != BreakerOpen {
		t.Fatalf("BreakerStatus = %v/%v, want open", snap.State, ok)
	}
	if len(Incidents()) == 0 {
		t.Fatal("Incidents() empty after trips and releases")
	}

	found := false
	for _, s := range SnapshotStats() {
		if s.Name == "facade.bp" {
			found = true
			if s.Panics == 0 || s.Trips == 0 {
				t.Fatalf("snapshot %+v missing hardening counters", s)
			}
		}
	}
	if !found {
		t.Fatal("SnapshotStats missing facade.bp")
	}
}
