package cbreak

import (
	"sync"
	"testing"
	"time"
)

// The facade tests exercise the public API end to end: a downstream
// user's view of the library.

func TestFacadeConflictBreakpoint(t *testing.T) {
	Reset()
	SetEnabled(true)
	defer Reset()
	obj := new(int)
	var order []string
	var mu sync.Mutex
	rec := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		TriggerHereAnd(NewConflictTrigger("facade-bp", obj), true,
			Options{Timeout: time.Second}, func() { rec("write") })
	}()
	go func() {
		defer wg.Done()
		if TriggerHere(NewConflictTrigger("facade-bp", obj), false, time.Second) {
			rec("read")
		}
	}()
	wg.Wait()
	if len(order) != 2 || order[0] != "write" || order[1] != "read" {
		t.Fatalf("order = %v", order)
	}
}

func TestFacadeEnableDisable(t *testing.T) {
	Reset()
	defer func() { SetEnabled(true); Reset() }()
	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled after SetEnabled(false)")
	}
	start := time.Now()
	if TriggerHere(NewConflictTrigger("off-bp", new(int)), true, time.Second) {
		t.Fatal("disabled facade hit")
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("disabled trigger paused")
	}
	SetEnabled(true)
	if !Enabled() {
		t.Fatal("not Enabled after SetEnabled(true)")
	}
}

func TestFacadeEngineAndStats(t *testing.T) {
	e := NewEngine()
	if e == Default() {
		t.Fatal("NewEngine returned the default engine")
	}
	obj := new(int)
	out := e.TriggerOutcome(NewConflictTrigger("stats-bp", obj), true,
		Options{Timeout: 5 * time.Millisecond})
	if out != OutcomeTimeout {
		t.Fatalf("outcome = %v", out)
	}
	st := e.Stats("stats-bp")
	if st.Arrivals() != 1 || st.Timeouts() != 1 {
		t.Fatalf("stats: %s", st)
	}
	if OutcomeHit.String() != "hit" || OutcomeDisabled.String() != "disabled" ||
		OutcomeLocalFalse.String() != "local-false" {
		t.Fatal("outcome constants broken")
	}
}

func TestFacadeTriggerClasses(t *testing.T) {
	obj := new(int)
	la, lb := new(int), new(int)
	if NewConflictTrigger("c", obj).Name() != "c" ||
		NewAtomicityTrigger("a", obj).Name() != "a" ||
		NewNotifyTrigger("n", obj).Name() != "n" {
		t.Fatal("trigger names broken")
	}
	d1 := NewDeadlockTrigger("d", la, lb)
	d2 := NewDeadlockTrigger("d", lb, la)
	if !d1.PredicateGlobal(d2) {
		t.Fatal("crossed deadlock triggers must match")
	}
	p := NewPredTrigger("p", 7, func() bool { return true },
		func(o *PredTrigger) bool { return o.State.(int) == 7 })
	if !p.PredicateLocal() || !p.PredicateGlobal(NewPredTrigger("p", 7, nil, nil)) {
		t.Fatal("pred trigger broken")
	}
}

func TestFacadeLocksAndClassPred(t *testing.T) {
	caret := NewLockClass("BasicCaret")
	m := NewClassMutex("caret-lock", caret)
	pred := ClassHeldPred(caret)
	if pred() {
		t.Fatal("class held before lock")
	}
	m.Lock()
	if !pred() {
		t.Fatal("class not held while locked")
	}
	m.Unlock()

	plain := NewMutex("plain")
	plain.With(func() {})
	cond := NewCond("cv", plain)
	plain.Lock()
	if cond.WaitTimeout(5 * time.Millisecond) {
		t.Fatal("empty cond wait succeeded")
	}
	plain.Unlock()
}

func TestFacadeMemoryAndDetector(t *testing.T) {
	sp := NewMemSpace()
	d := NewDetector()
	sp.Trace(d)
	c := NewMemCell(sp, "x", 0)
	gids := make(chan struct{})
	go func() { c.Store("w1", 1); close(gids) }()
	<-gids
	c.Store("w2", 2)
	reports := d.Reports()
	if len(reports) == 0 {
		t.Fatal("detector saw no race")
	}
}

func TestFacadeProbabilityModel(t *testing.T) {
	base := ProbExactBase(100000, 2)
	with := ProbWithTrigger(100000, 10, 2, 1000)
	gain := ProbImprovement(100000, 10, 2, 1000)
	if with <= base || gain < 100 {
		t.Fatalf("model: base=%v with=%v gain=%v", base, with, gain)
	}
}

func TestFacadeScheduleAndRegression(t *testing.T) {
	s := NewSchedule(time.Second, "a", "b")
	if !s.Reach("a") || !s.Reach("b") || !s.Done() {
		t.Fatal("schedule broken")
	}
	e := NewEngine()
	reg := &Regression{Engine: e, Required: []string{"r-bp"}}
	obj := new(int)
	res := reg.Run(func() {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			e.TriggerHere(NewConflictTrigger("r-bp", obj), true, Options{Timeout: time.Second})
		}()
		go func() {
			defer wg.Done()
			e.TriggerHere(NewConflictTrigger("r-bp", obj), false, Options{Timeout: time.Second})
		}()
		wg.Wait()
	})
	if !res.AllHit {
		t.Fatalf("regression: %s", res)
	}
}

func TestFacadeMultiWay(t *testing.T) {
	Reset()
	defer Reset()
	obj := new(int)
	var seq []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for slot := 0; slot < 3; slot++ {
		slot := slot
		wg.Add(1)
		go func() {
			defer wg.Done()
			TriggerHereMultiAnd(NewConflictTrigger("facade-3way", obj), slot, 3,
				Options{Timeout: 2 * time.Second}, func() {
					mu.Lock()
					seq = append(seq, slot)
					mu.Unlock()
				})
		}()
	}
	wg.Wait()
	if len(seq) != 3 || seq[0] != 0 || seq[1] != 1 || seq[2] != 2 {
		t.Fatalf("multi order = %v", seq)
	}
	if !TriggerHereMulti(NewConflictTrigger("facade-solo", obj), 0, 2,
		Options{Timeout: time.Millisecond}) == false {
		t.Fatal("lonely multi slot should time out")
	}
}

func TestFacadeScheduleGraph(t *testing.T) {
	g := NewScheduleGraph(2 * time.Second)
	g.Point("setup").Point("use", "setup")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		g.Reach("use")
		mu.Lock()
		order = append(order, "use")
		mu.Unlock()
	}()
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		g.Reach("setup")
		mu.Lock()
		order = append(order, "setup")
		mu.Unlock()
	}()
	wg.Wait()
	if len(order) != 2 || order[0] != "setup" || order[1] != "use" {
		t.Fatalf("order = %v", order)
	}
}

func TestFacadeEngineEventsAndOnHit(t *testing.T) {
	e := NewEngine()
	hits := 0
	e.SetOnHit(func(name string, a, p Trigger) { hits++ })
	obj := new(int)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		e.TriggerHere(NewConflictTrigger("facade-ev", obj), true, Options{Timeout: time.Second})
	}()
	go func() {
		defer wg.Done()
		e.TriggerHere(NewConflictTrigger("facade-ev", obj), false, Options{Timeout: time.Second})
	}()
	wg.Wait()
	if hits != 1 {
		t.Fatalf("OnHit fired %d times", hits)
	}
	if len(e.Events()) == 0 {
		t.Fatal("no events recorded")
	}
}
