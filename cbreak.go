// Package cbreak is a Go implementation of concurrent breakpoints, the
// light-weight, programmatic mechanism for making concurrency Heisenbugs
// reproducible described in "Concurrent Breakpoints" (Chang-Seo Park and
// Koushik Sen, UC Berkeley EECS-2011-159, PPoPP 2012).
//
// A concurrent breakpoint (l1, l2, phi) names two program locations and a
// predicate over the joint local state of two goroutines. When two
// goroutines are at l1 and l2 with phi satisfied, the breakpoint is hit
// and the goroutines proceed in the breakpoint's declared order — which
// deterministically resolves the data race, lock contention, atomicity
// violation, or missed notification that the breakpoint describes.
//
// The BTrigger mechanism makes hitting a breakpoint probable: a goroutine
// whose local predicate holds is postponed for a bounded pause, giving
// the partner time to arrive. Timeouts guarantee breakpoints can never
// deadlock the program, so they can stay in code, disabled, like
// assertions.
//
// Minimal use, mirroring the paper's Figures 1 and 7:
//
//	func foo(p1 *Point) {
//	    cbreak.TriggerHere(cbreak.NewConflictTrigger("trigger1", p1), false, 0)
//	    p1.x = 10 // racy write
//	}
//
//	func bar(p2 *Point) {
//	    cbreak.TriggerHere(cbreak.NewConflictTrigger("trigger1", p2), true, 0)
//	    t = p2.x // racy read, forced to happen first
//	}
//
// This package is a facade over the implementation packages:
// internal/core (engine and triggers), internal/locks (instrumented
// locks, condition variables, and lock-class predicates), internal/detect
// (the Eraser-style and happens-before conflict detectors used to find
// breakpoint sites), internal/prob (the section-3 probability model), and
// internal/replay (schedule pinning and breakpoint regression tests).
package cbreak

import (
	"time"

	"cbreak/internal/core"
	"cbreak/internal/detect"
	"cbreak/internal/guard"
	"cbreak/internal/guard/faultinject"
	"cbreak/internal/locks"
	"cbreak/internal/memory"
	"cbreak/internal/prob"
	"cbreak/internal/replay"
	"cbreak/internal/telemetry"
	"cbreak/internal/waitgraph"
)

// Core breakpoint API.
type (
	// Trigger is one side of a concurrent breakpoint.
	Trigger = core.Trigger
	// Options refines a TriggerHere call (timeout, IgnoreFirst, Bound,
	// ExtraLocal).
	Options = core.Options
	// Outcome classifies what happened at a TriggerHere call.
	Outcome = core.Outcome
	// Engine is a breakpoint engine (postponed set + statistics).
	Engine = core.Engine
	// Breakpoint is a pre-resolved handle to one breakpoint: the
	// per-call registry lookup is done once at Register time, so hot
	// call sites pay only the arrival itself. Handles survive Reset by
	// transparently re-resolving.
	Breakpoint = core.Breakpoint
	// BPStats carries per-breakpoint counters.
	BPStats = core.BPStats
	// ConflictTrigger is a same-object conflict (data race) breakpoint side.
	ConflictTrigger = core.ConflictTrigger
	// DeadlockTrigger is a crossed-lock deadlock breakpoint side.
	DeadlockTrigger = core.DeadlockTrigger
	// AtomicityTrigger is an atomicity-violation breakpoint side.
	AtomicityTrigger = core.AtomicityTrigger
	// NotifyTrigger is a missed-notification breakpoint side.
	NotifyTrigger = core.NotifyTrigger
	// PredTrigger is a generic closure-predicate breakpoint side.
	PredTrigger = core.PredTrigger
)

// Outcome values.
const (
	OutcomeDisabled   = core.OutcomeDisabled
	OutcomeLocalFalse = core.OutcomeLocalFalse
	OutcomeTimeout    = core.OutcomeTimeout
	OutcomeHit        = core.OutcomeHit
	// OutcomePanic: a user closure panicked and the hardening layer
	// absorbed it (docs/USAGE.md, "Hardening & production use").
	OutcomePanic = core.OutcomePanic
	// OutcomeShed: an open circuit breaker passed the arrival straight
	// through without postponement.
	OutcomeShed = core.OutcomeShed
)

// NewEngine returns a fresh, enabled breakpoint engine.
func NewEngine() *Engine { return core.NewEngine() }

// Default returns the process-wide engine used by the package-level
// trigger functions.
func Default() *Engine { return core.Default() }

// SetEnabled switches the default engine on or off (like enabling or
// disabling assertions).
func SetEnabled(v bool) { core.SetEnabled(v) }

// Enabled reports whether the default engine is enabled.
func Enabled() bool { return core.Enabled() }

// Reset clears the default engine's postponed set and statistics.
func Reset() { core.Reset() }

// Register returns a handle to the named breakpoint on the default
// engine. Prefer handles over the string-keyed TriggerHere* calls on
// hot paths: the handle caches the breakpoint's shard, so each arrival
// skips the per-call registry lookup (see docs/USAGE.md, "Engine
// architecture").
func Register(name string) *Breakpoint { return core.Default().Breakpoint(name) }

// TriggerHere announces that the caller reached one side of breakpoint t;
// see core.Engine.TriggerHere. A zero timeout uses the engine default.
func TriggerHere(t Trigger, first bool, timeout time.Duration) bool {
	return core.TriggerHere(t, first, timeout)
}

// TriggerHereOpts is TriggerHere with full options.
func TriggerHereOpts(t Trigger, first bool, opts Options) bool {
	return core.TriggerHereOpts(t, first, opts)
}

// TriggerHereAnd is TriggerHere with a strict ordering handshake: action
// is the breakpoint location's next instruction and is run inside the
// call; a hit releases the second side only after the first side's
// action returns.
func TriggerHereAnd(t Trigger, first bool, opts Options, action func()) bool {
	return core.TriggerHereAnd(t, first, opts, action)
}

// TriggerHereMulti announces that the caller reached slot `slot` of the
// n-way breakpoint t (the paper's more-than-two-threads generalization);
// slots are released in order on a hit.
func TriggerHereMulti(t Trigger, slot, arity int, opts Options) bool {
	return core.Default().TriggerHereMulti(t, slot, arity, opts)
}

// TriggerHereMultiAnd is TriggerHereMulti with the slot's guarded next
// instruction run inside the call, strictly in slot order on a hit.
func TriggerHereMultiAnd(t Trigger, slot, arity int, opts Options, action func()) bool {
	return core.Default().TriggerHereMultiAnd(t, slot, arity, opts, action)
}

// NewConflictTrigger returns a data-race breakpoint side over obj.
func NewConflictTrigger(name string, obj any) *ConflictTrigger {
	return core.NewConflictTrigger(name, obj)
}

// NewDeadlockTrigger returns a deadlock breakpoint side: the caller holds
// held and is about to acquire want.
func NewDeadlockTrigger(name string, held, want any) *DeadlockTrigger {
	return core.NewDeadlockTrigger(name, held, want)
}

// NewAtomicityTrigger returns an atomicity-violation breakpoint side over
// obj.
func NewAtomicityTrigger(name string, obj any) *AtomicityTrigger {
	return core.NewAtomicityTrigger(name, obj)
}

// NewNotifyTrigger returns a missed-notification breakpoint side over the
// condition object cond.
func NewNotifyTrigger(name string, cond any) *NotifyTrigger {
	return core.NewNotifyTrigger(name, cond)
}

// NewPredTrigger returns a generic breakpoint side with closure
// predicates.
func NewPredTrigger(name string, state any, local func() bool, global func(other *PredTrigger) bool) *PredTrigger {
	return core.NewPredTrigger(name, state, local, global)
}

// Instrumented synchronization substrate.
type (
	// Mutex is a named, observable lock with per-goroutine held-set
	// tracking.
	Mutex = locks.Mutex
	// Cond is a wait/notify condition variable on a Mutex.
	Cond = locks.Cond
	// LockClass tags locks for class-held predicates.
	LockClass = locks.Class
)

// NewMutex returns a named instrumented mutex.
func NewMutex(name string) *Mutex { return locks.NewMutex(name) }

// NewClassMutex returns a named mutex tagged with a lock class.
func NewClassMutex(name string, c *LockClass) *Mutex { return locks.NewClassMutex(name, c) }

// NewLockClass returns a lock class for class-held predicates.
func NewLockClass(name string) *LockClass { return locks.NewClass(name) }

// NewCond returns a condition variable on monitor l.
func NewCond(name string, l *Mutex) *Cond { return locks.NewCond(name, l) }

// ClassHeldPred returns an Options.ExtraLocal predicate that holds while
// the calling goroutine holds a lock of class c (the paper's
// isLockTypeHeld refinement).
func ClassHeldPred(c *LockClass) func() bool { return locks.ClassHeldPred(c) }

// Instrumented memory substrate.
type (
	// MemSpace groups instrumented cells under one tracer.
	MemSpace = memory.Space
	// MemCell is an instrumented shared integer variable.
	MemCell = memory.Cell
)

// NewMemSpace returns an empty instrumented memory space.
func NewMemSpace() *MemSpace { return memory.NewSpace() }

// NewMemCell returns a named cell in space s with initial value init.
func NewMemCell(s *MemSpace, name string, init int64) *MemCell {
	return memory.NewCell(s, name, init)
}

// Conflict detection (Methodology I and II of the paper).
type (
	// Detector finds data races, lock contentions, and lock-order
	// deadlocks at runtime.
	Detector = detect.Detector
	// ConflictReport is one detected potential conflict state.
	ConflictReport = detect.Report
)

// NewDetector returns a detector with both race detectors enabled.
func NewDetector() *Detector { return detect.New() }

// Probability model (section 3 of the paper).
var (
	// ProbExactBase is the exact no-trigger hit probability
	// 1 - C(N-m,m)/C(N,m).
	ProbExactBase = prob.ExactBase
	// ProbWithTrigger is the with-trigger lower bound.
	ProbWithTrigger = prob.ExactTriggerLB
	// ProbImprovement is the amplification factor T(N-m+1)/(N+MT-M).
	ProbImprovement = prob.ImprovementFactor
)

// Schedule pinning and regression testing (section 8 of the paper).
type (
	// Schedule pins a total order over named program points.
	Schedule = replay.Schedule
	// ScheduleGraph pins a partial order (dependency DAG) over points.
	ScheduleGraph = replay.Graph
	// Regression asserts that a scenario hits a set of breakpoints.
	Regression = replay.Regression
	// ScheduleViolation is the structured record of a timed-out
	// Schedule/ScheduleGraph wait: which point was stuck and who held
	// it up.
	ScheduleViolation = replay.Violation
)

// NewSchedule declares a total order over named points with a per-wait
// timeout.
func NewSchedule(timeout time.Duration, points ...string) *Schedule {
	return replay.NewSchedule(timeout, points...)
}

// NewScheduleGraph declares a partial order over named points; add
// edges with Point(name, deps...).
func NewScheduleGraph(timeout time.Duration) *ScheduleGraph {
	return replay.NewGraph(timeout)
}

// Hardening layer (docs/USAGE.md, "Hardening & production use"): panic
// isolation, the postponement watchdog, per-breakpoint circuit
// breakers, the incident log, and deterministic fault injection.
type (
	// Incident is one retained hardening event (absorbed panic, stall,
	// watchdog release, breaker transition).
	Incident = guard.Incident
	// IncidentKind classifies incidents.
	IncidentKind = guard.IncidentKind
	// DurableSink receives a durable copy of every engine event and
	// incident (docs/USAGE.md, "Durability & crash recovery"); the
	// canonical implementation is internal/journal/sink.
	DurableSink = core.DurableSink
	// Event is one engine event-log entry; DurableSink implementations
	// receive a copy of each as it is recorded.
	Event = core.Event
	// EventKind classifies engine events (arrived/postponed/hit/timeout).
	EventKind = core.EventKind
	// BreakerConfig parameterizes per-breakpoint circuit breakers.
	BreakerConfig = guard.BreakerConfig
	// BreakerState is a circuit breaker's state (closed/open/half-open).
	BreakerState = guard.BreakerState
	// BreakerSnapshot is a point-in-time copy of one breaker's state.
	BreakerSnapshot = guard.BreakerSnapshot
	// Fault is the set of faults injectable at one trigger arrival.
	Fault = guard.Fault
	// FaultInjector decides which faults to inject per arrival.
	FaultInjector = guard.Injector
	// FaultPlan is a deterministic, ordinal-keyed fault-injection plan.
	FaultPlan = faultinject.Plan
	// FaultSide selects which breakpoint side a fault rule applies to.
	FaultSide = faultinject.Side
	// StatsSnapshot is an atomic copy of one breakpoint's counters.
	StatsSnapshot = core.StatsSnapshot
	// OverloadConfig parameterizes postponed-population overload
	// protection (per-shard caps, adaptive budgets, global shedding).
	OverloadConfig = core.OverloadConfig
	// PostponedWaiter describes one goroutine currently postponed at a
	// breakpoint, as observed by supervision snapshots.
	PostponedWaiter = core.PostponedWaiter
)

// Incident kinds.
const (
	KindPanic           = guard.KindPanic
	KindStall           = guard.KindStall
	KindWatchdogRelease = guard.KindWatchdogRelease
	KindBreakerTrip     = guard.KindBreakerTrip
	KindBreakerProbe    = guard.KindBreakerProbe
	KindBreakerRearm    = guard.KindBreakerRearm
	// Wait-graph supervision incidents (docs/USAGE.md, "Deadlock
	// supervision & overload shedding").
	KindCycleBreak        = guard.KindCycleBreak
	KindDeadlockConfirmed = guard.KindDeadlockConfirmed
	KindOverloadShed      = guard.KindOverloadShed
	// Network chaos incidents (docs/USAGE.md, "Network fault injection
	// & load testing").
	KindNetFault = guard.KindNetFault
)

// Breaker states and fault-plan sides.
const (
	BreakerClosed   = guard.BreakerClosed
	BreakerOpen     = guard.BreakerOpen
	BreakerHalfOpen = guard.BreakerHalfOpen

	BothSides  = faultinject.BothSides
	FirstSide  = faultinject.FirstSide
	SecondSide = faultinject.SecondSide
)

// DefaultBreakerConfig returns the production breaker defaults.
func DefaultBreakerConfig() BreakerConfig { return guard.DefaultBreakerConfig() }

// NewFaultPlan returns an empty deterministic fault-injection plan;
// install it with SetFaultInjector.
func NewFaultPlan() *FaultPlan { return faultinject.NewPlan() }

// SetFaultInjector installs a fault injector on the default engine (nil
// removes it).
func SetFaultInjector(in FaultInjector) { core.Default().SetInjector(in) }

// SetBreakerConfig enables per-breakpoint circuit breakers on the
// default engine (nil disables them).
func SetBreakerConfig(cfg *BreakerConfig) { core.Default().SetBreakerConfig(cfg) }

// BreakerStatus returns the default engine's circuit-breaker state for
// the named breakpoint; ok is false when breakers are disabled or the
// breakpoint has not been seen since they were enabled.
func BreakerStatus(name string) (BreakerSnapshot, bool) {
	return core.Default().BreakerSnapshot(name)
}

// StartWatchdog starts the default engine's postponement watchdog
// (zero interval defaults to 50ms; zero grace defaults to interval).
func StartWatchdog(interval, grace time.Duration) { core.Default().StartWatchdog(interval, grace) }

// StopWatchdog stops the default engine's watchdog and waits for it.
func StopWatchdog() { core.Default().StopWatchdog() }

// SetIsolateActionPanics selects the default engine's action-panic
// policy: false (default) re-throws action panics to the caller after
// releasing the partner; true absorbs them into OutcomePanic.
func SetIsolateActionPanics(v bool) { core.Default().SetIsolateActionPanics(v) }

// Incidents returns the default engine's retained hardening incidents,
// oldest first.
func Incidents() []Incident { return core.Default().Incidents() }

// IncidentCount returns the default engine's monotonic total of
// incidents of one kind (monotonic even after the retained ring wraps).
func IncidentCount(k IncidentKind) int64 { return core.Default().IncidentCount(k) }

// SetDurableSink tees the default engine's events and incidents into a
// durable sink (nil removes it), so a crashed process leaves its
// breakpoint history on disk for post-mortem replay.
func SetDurableSink(s DurableSink) { core.Default().SetDurableSink(s) }

// SnapshotStats returns atomic snapshots of every breakpoint's counters
// on the default engine, sorted by name.
func SnapshotStats() []StatsSnapshot { return core.Default().SnapshotAll() }

// SetOverloadConfig installs postponed-population overload protection
// on the default engine (nil disables it).
func SetOverloadConfig(cfg *OverloadConfig) { core.Default().SetOverloadConfig(cfg) }

// PostponedTotal returns how many goroutines are currently postponed
// across all of the default engine's breakpoints.
func PostponedTotal() int64 { return core.Default().PostponedTotal() }

// PostponedWaiters snapshots every goroutine currently postponed on the
// default engine, for wait-graph construction or diagnostics.
func PostponedWaiters() []PostponedWaiter { return core.Default().PostponedWaiters() }

// ForceRelease releases the named breakpoint's postponed goroutine gid
// early (as if its budget expired), recording an incident of the given
// kind; it reports whether the goroutine was found postponed there.
func ForceRelease(name string, gid uint64, kind IncidentKind, detail string) bool {
	return core.Default().ForceRelease(name, gid, kind, detail)
}

// Introspection accessors over the default engine (docs/USAGE.md,
// "Live control plane & metrics").

// Overload returns the default engine's installed overload protection
// bounds; ok is false when none are installed.
func Overload() (OverloadConfig, bool) { return core.Default().Overload() }

// Events returns the default engine's retained event ring (arrivals,
// postpones, hits, timeouts), oldest first.
func Events() []Event { return core.Default().Events() }

// Stats returns the live counters of the named breakpoint on the
// default engine (created if unseen).
func Stats(name string) *BPStats { return core.Default().Stats(name) }

// PostponedCount returns how many goroutines are currently postponed at
// the named two-way breakpoint on the default engine.
func PostponedCount(name string) int { return core.Default().PostponedCount(name) }

// MultiPostponedCount is PostponedCount for the n-way generalization.
func MultiPostponedCount(name string) int { return core.Default().MultiPostponedCount(name) }

// IncidentCounts returns the default engine's monotonic incident totals
// keyed by kind label, only kinds seen at least once.
func IncidentCounts() map[string]int64 { return core.Default().IncidentCounts() }

// EngineReport renders the default engine's per-breakpoint statistics
// as a human-readable table.
func EngineReport() string { return core.Default().Report() }

// DurableSinkInstalled reports whether a durable sink is currently
// installed on the default engine.
func DurableSinkInstalled() bool { return core.Default().DurableSinkInstalled() }

// SetBreakpointEnabled enables or disables one breakpoint on the
// default engine without touching the rest — the live-ops analog of
// SetEnabled. Disabling an unseen name registers it, so a breakpoint
// can be pre-disabled before its first arrival.
func SetBreakpointEnabled(name string, enabled bool) {
	core.Default().SetBreakpointEnabled(name, enabled)
}

// BreakpointEnabled reports whether the named breakpoint on the default
// engine is enabled (unseen breakpoints are).
func BreakpointEnabled(name string) bool { return core.Default().BreakpointEnabled(name) }

// Typed telemetry: the single bus every introspection surface emits
// through, plus the pull-path metric registry (docs/USAGE.md, "Live
// control plane & metrics").
type (
	// TelemetryBus carries every engine record (events, incidents,
	// wait-graph reports, trial outcomes) to taps and subscriptions.
	TelemetryBus = telemetry.Bus
	// TelemetryRecord is one bus record: a kind tag plus the matching
	// payload field.
	TelemetryRecord = telemetry.Record
	// TelemetryRecordKind discriminates TelemetryRecord payloads.
	TelemetryRecordKind = telemetry.RecordKind
	// TelemetrySubscription is an async bounded-buffer bus listener.
	TelemetrySubscription = telemetry.Subscription
	// MetricRegistry gathers collectors into Prometheus text expositions.
	MetricRegistry = telemetry.Registry
	// MetricSample is one gathered metric value.
	MetricSample = telemetry.Sample
	// MetricDesc describes one metric family in the catalog.
	MetricDesc = telemetry.Desc
)

// Telemetry record kinds.
const (
	RecordEvent    = telemetry.RecordEvent
	RecordIncident = telemetry.RecordIncident
	RecordReport   = telemetry.RecordReport
	RecordTrial    = telemetry.RecordTrial
)

// Telemetry returns the default engine's telemetry bus; subscribe for a
// live feed or attach synchronous taps.
func Telemetry() *TelemetryBus { return core.Default().Bus() }

// NewMetricRegistry returns an empty metric registry; render it with
// its WritePrometheus method.
func NewMetricRegistry() *MetricRegistry { return telemetry.NewRegistry() }

// RegisterMetrics registers the default engine's metric collectors
// (engine gauges, per-breakpoint counters and wait histograms, incident
// totals) on reg.
func RegisterMetrics(reg *MetricRegistry) { core.Default().RegisterMetrics(reg) }

// Wait-graph supervision (docs/USAGE.md, "Deadlock supervision &
// overload shedding").
type (
	// WaitGraphSupervisor periodically scans the engine's postponed set
	// plus the instrumented-lock wait-for graph, confirms deadlocks, and
	// breaks postpone-stall cycles.
	WaitGraphSupervisor = waitgraph.Supervisor
	// WaitGraphConfig parameterizes a supervisor.
	WaitGraphConfig = waitgraph.Config
	// WaitGraphReport is one confirmed supervisor finding.
	WaitGraphReport = waitgraph.Report
	// WaitGraphReportKind classifies findings.
	WaitGraphReportKind = waitgraph.ReportKind
)

// Wait-graph report kinds.
const (
	ReportDeadlock      = waitgraph.ReportDeadlock
	ReportPostponeStall = waitgraph.ReportPostponeStall
)

// StartSupervisor starts a wait-graph supervisor over the default
// engine and returns it; callers own Stop.
func StartSupervisor(cfg WaitGraphConfig) *WaitGraphSupervisor {
	s := waitgraph.New(core.Default(), cfg)
	s.Start()
	return s
}
